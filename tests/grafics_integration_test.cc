// End-to-end integration tests of the GRAFICS pipeline on synthetic
// buildings, plus the experiment harness.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/grafics.h"
#include "synth/presets.h"

namespace grafics::core {
namespace {

/// Small, fast campus building shared by the integration tests.
rf::Dataset CampusDataset(std::uint64_t seed = 11, int records_per_floor = 80) {
  auto config = synth::CampusBuildingConfig(seed, records_per_floor);
  auto sim = config.MakeSimulator();
  return sim.GenerateDataset();
}

GraficsConfig FastConfig() {
  GraficsConfig config;
  config.trainer.samples_per_edge = 60;
  config.online_refine_iterations = 300;
  return config;
}

TEST(GraficsIntegrationTest, TrainRequiresRecordsAndLabels) {
  Grafics system(FastConfig());
  EXPECT_THROW(system.Train({}), Error);
  // Records without any label are rejected.
  rf::SignalRecord unlabeled;
  unlabeled.Add(rf::MacAddress(1), -60.0);
  EXPECT_THROW(system.Train({unlabeled}), Error);
  EXPECT_FALSE(system.is_trained());
}

TEST(GraficsIntegrationTest, PredictBeforeTrainThrows) {
  Grafics system(FastConfig());
  rf::SignalRecord record;
  record.Add(rf::MacAddress(1), -60.0);
  EXPECT_THROW(system.Predict(record), Error);
}

TEST(GraficsIntegrationTest, HighAccuracyOnCampusWithFourLabels) {
  rf::Dataset dataset = CampusDataset();
  Rng rng(3);
  auto [train, test] = dataset.TrainTestSplit(0.7, rng);
  train.KeepLabelsPerFloor(4, rng);

  Grafics system(FastConfig());
  system.Train(train.records());
  EXPECT_TRUE(system.is_trained());

  std::vector<rf::FloorId> truth;
  for (const auto& r : test.records()) truth.push_back(*r.floor());
  const auto predicted = system.PredictBatch(test.records());
  const ClassificationMetrics metrics = ComputeMetrics(truth, predicted);
  EXPECT_GT(metrics.micro.f_score, 0.9);
  EXPECT_GT(metrics.macro.f_score, 0.9);
}

TEST(GraficsIntegrationTest, ClusterCountEqualsLabeledCount) {
  rf::Dataset dataset = CampusDataset();
  Rng rng(5);
  dataset.KeepLabelsPerFloor(4, rng);
  Grafics system(FastConfig());
  system.Train(dataset.records());
  EXPECT_EQ(system.clustering().num_clusters(), 12u);  // 3 floors x 4 labels
  EXPECT_EQ(system.classifier().num_centroids(), 12u);
}

TEST(GraficsIntegrationTest, RecordWithOnlyUnseenMacsDiscarded) {
  rf::Dataset dataset = CampusDataset(13, 40);
  Rng rng(7);
  dataset.KeepLabelsPerFloor(4, rng);
  Grafics system(FastConfig());
  system.Train(dataset.records());

  rf::SignalRecord alien;
  alien.Add(rf::MacAddress(0xABCDEF), -50.0);  // never seen in training
  EXPECT_FALSE(system.Predict(alien).has_value());
  // Empty record likewise.
  EXPECT_FALSE(system.Predict(rf::SignalRecord()).has_value());
}

TEST(GraficsIntegrationTest, PredictLeavesTrainedGraphUnchanged) {
  rf::Dataset dataset = CampusDataset(17, 40);
  Rng rng(9);
  dataset.KeepLabelsPerFloor(4, rng);
  Grafics system(FastConfig());
  system.Train(dataset.records());
  const std::size_t records_before = system.graph().NumRecords();

  // Predict a record resembling training data (reuse a training record):
  // the query is served from a snapshot-isolated overlay, so the trained
  // graph does not grow.
  const auto prediction = system.Predict(dataset.record(0));
  EXPECT_TRUE(prediction.has_value());
  EXPECT_EQ(system.graph().NumRecords(), records_before);
}

TEST(GraficsIntegrationTest, ResubmittedTrainingRecordsPredictTheirFloor) {
  rf::Dataset dataset = CampusDataset(19, 60);
  Rng rng(11);
  const auto truth = dataset.KeepLabelsPerFloor(4, rng);
  Grafics system(FastConfig());
  system.Train(dataset.records());
  std::size_t correct = 0;
  constexpr std::size_t kProbes = 30;
  for (std::size_t i = 0; i < kProbes; ++i) {
    const auto predicted = system.Predict(dataset.record(i));
    if (predicted && *predicted == *truth[i]) ++correct;
  }
  EXPECT_GE(correct, kProbes * 8 / 10);
}

TEST(GraficsIntegrationTest, CustomWeightFunctionIsUsed) {
  GraficsConfig config = FastConfig();
  config.custom_weight = graph::BinaryWeight();
  Grafics system(config);
  rf::SignalRecord r1;
  r1.Add(rf::MacAddress(1), -60.0);
  r1.set_floor(0);
  rf::SignalRecord r2;
  r2.Add(rf::MacAddress(1), -90.0);
  system.Train({r1, r2});
  for (const auto& edge : system.graph().Edges()) {
    EXPECT_DOUBLE_EQ(edge.weight, 1.0);
  }
}

TEST(GraficsIntegrationTest, TrainingEmbeddingAccessors) {
  rf::Dataset dataset = CampusDataset(23, 30);
  Rng rng(13);
  dataset.KeepLabelsPerFloor(2, rng);
  GraficsConfig config = FastConfig();
  config.trainer.dim = 6;
  Grafics system(config);
  system.Train(dataset.records());
  const Matrix embeddings = system.TrainingEmbeddings();
  EXPECT_EQ(embeddings.rows(), dataset.size());
  EXPECT_EQ(embeddings.cols(), 6u);
  const auto row = system.TrainingEmbedding(0);
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_DOUBLE_EQ(row[c], embeddings(0, c));
  }
}

// ------------------------------------------------------------ harness ----

TEST(ExperimentHarnessTest, AlgorithmNamesDistinct) {
  const Algorithm all[] = {
      Algorithm::kGrafics,     Algorithm::kGraficsLine,
      Algorithm::kGraficsLineBoth, Algorithm::kScalableDnn,
      Algorithm::kSae,         Algorithm::kMdsProx,
      Algorithm::kAutoencoderProx, Algorithm::kMatrixProx};
  std::set<std::string> names;
  for (Algorithm a : all) names.insert(AlgorithmName(a));
  EXPECT_EQ(names.size(), std::size(all));
}

TEST(ExperimentHarnessTest, GraficsExperimentProducesStrongScores) {
  const rf::Dataset dataset = CampusDataset(29, 60);
  ExperimentConfig config;
  config.labels_per_floor = 4;
  config.grafics = FastConfig();
  const ExperimentResult result =
      RunExperiment(Algorithm::kGrafics, dataset, config, 7);
  EXPECT_GT(result.metrics.micro.f_score, 0.85);
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_GT(result.infer_seconds, 0.0);
}

TEST(ExperimentHarnessTest, MatrixProxRunsEndToEnd) {
  const rf::Dataset dataset = CampusDataset(31, 40);
  ExperimentConfig config;
  config.labels_per_floor = 4;
  const ExperimentResult result =
      RunExperiment(Algorithm::kMatrixProx, dataset, config, 7);
  EXPECT_GT(result.metrics.micro.f_score, 0.3);
  EXPECT_EQ(result.metrics.num_samples, dataset.size() * 3 / 10);
}

TEST(ExperimentHarnessTest, SummarizeMetricsMeanAndStddev) {
  ClassificationMetrics a;
  a.micro.f_score = 0.8;
  a.macro.f_score = 0.6;
  ClassificationMetrics b;
  b.micro.f_score = 1.0;
  b.macro.f_score = 0.8;
  const MetricsSummary s = SummarizeMetrics({a, b});
  EXPECT_DOUBLE_EQ(s.micro_f_mean, 0.9);
  EXPECT_DOUBLE_EQ(s.macro_f_mean, 0.7);
  EXPECT_NEAR(s.micro_f_stddev, 0.1414, 1e-3);
  EXPECT_EQ(s.repetitions, 2u);
}

TEST(ExperimentHarnessTest, SummarizeEmptyThrows) {
  EXPECT_THROW(SummarizeMetrics({}), Error);
}

TEST(ExperimentHarnessTest, RunRepeatedAggregates) {
  const rf::Dataset dataset = CampusDataset(37, 40);
  ExperimentConfig config;
  config.labels_per_floor = 4;
  config.grafics = FastConfig();
  const MetricsSummary s =
      RunRepeated(Algorithm::kGrafics, dataset, config, 3, 2);
  EXPECT_EQ(s.repetitions, 2u);
  EXPECT_GT(s.micro_f_mean, 0.7);
}

}  // namespace
}  // namespace grafics::core
