#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/error.h"

namespace grafics {
namespace {

TEST(CsvTest, ParseSimpleLine) {
  const CsvRow row = ParseCsvLine("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[2], "c");
}

TEST(CsvTest, ParseEmptyFields) {
  const CsvRow row = ParseCsvLine(",x,");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "");
  EXPECT_EQ(row[1], "x");
  EXPECT_EQ(row[2], "");
}

TEST(CsvTest, ParseQuotedFieldWithComma) {
  const CsvRow row = ParseCsvLine(R"("a,b",c)");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "a,b");
}

TEST(CsvTest, ParseEscapedQuote) {
  const CsvRow row = ParseCsvLine(R"("he said ""hi""")");
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], R"(he said "hi")");
}

TEST(CsvTest, ParseToleratesCrlf) {
  const CsvRow row = ParseCsvLine("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(CsvTest, UnterminatedQuoteThrows) {
  EXPECT_THROW(ParseCsvLine(R"("oops)"), Error);
}

TEST(CsvTest, FormatRoundTrip) {
  const CsvRow row = {"plain", "with,comma", R"(with"quote)", ""};
  const CsvRow parsed = ParseCsvLine(FormatCsvLine(row));
  EXPECT_EQ(parsed, row);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "grafics_csv_test.csv")
          .string();
  const std::vector<CsvRow> rows = {{"1", "a,b"}, {"2", "plain"}};
  WriteCsvFile(path, rows);
  EXPECT_EQ(ReadCsvFile(path), rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(ReadCsvFile("/nonexistent/definitely/missing.csv"), Error);
}

}  // namespace
}  // namespace grafics
