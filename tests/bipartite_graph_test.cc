#include "graph/bipartite_graph.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace grafics::graph {
namespace {

rf::SignalRecord MakeRecord(std::initializer_list<std::pair<int, double>> obs) {
  rf::SignalRecord r;
  for (const auto& [mac, rssi] : obs) {
    r.Add(rf::MacAddress(static_cast<std::uint64_t>(mac)), rssi);
  }
  return r;
}

const WeightFn kWeight = OffsetWeight(120.0);

TEST(BipartiteGraphTest, EmptyGraph) {
  BipartiteGraph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumRecords(), 0u);
  EXPECT_EQ(g.NumMacs(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(BipartiteGraphTest, PaperFigure4Example) {
  // v1: MAC1 -66, MAC2 -60; v2: MAC2 -70, MAC3 -70 (paper Fig. 2/4).
  BipartiteGraph g;
  const NodeId v1 = g.AddRecord(MakeRecord({{1, -66.0}, {2, -60.0}}), kWeight);
  const NodeId v2 = g.AddRecord(MakeRecord({{2, -70.0}, {3, -70.0}}), kWeight);
  EXPECT_EQ(g.NumRecords(), 2u);
  EXPECT_EQ(g.NumMacs(), 3u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.TypeOf(v1), NodeType::kRecord);

  const NodeId mac2 = *g.FindMacNode(rf::MacAddress(2));
  EXPECT_EQ(g.TypeOf(mac2), NodeType::kMac);
  EXPECT_EQ(g.Degree(mac2), 2u);                       // both records
  EXPECT_DOUBLE_EQ(g.WeightedDegree(mac2), 60.0 + 50.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(v1), 54.0 + 60.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(v2), 50.0 + 50.0);
  EXPECT_DOUBLE_EQ(g.TotalEdgeWeight(), 54 + 60 + 50 + 50);
}

TEST(BipartiteGraphTest, SharedMacsReuseNodes) {
  BipartiteGraph g;
  g.AddRecord(MakeRecord({{1, -60.0}}), kWeight);
  g.AddRecord(MakeRecord({{1, -70.0}}), kWeight);
  EXPECT_EQ(g.NumMacs(), 1u);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(BipartiteGraphTest, RecordNodeRoundTrip) {
  BipartiteGraph g;
  for (int i = 0; i < 5; ++i) {
    g.AddRecord(MakeRecord({{i, -60.0}, {i + 1, -70.0}}), kWeight);
  }
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(g.RecordIndexOf(g.RecordNode(i)), i);
  }
  EXPECT_THROW(g.RecordNode(5), Error);
  // A MAC node is not a record node.
  const NodeId mac = *g.FindMacNode(rf::MacAddress(0));
  EXPECT_THROW(g.RecordIndexOf(mac), Error);
}

TEST(BipartiteGraphTest, NeighborsAreBidirectional) {
  BipartiteGraph g;
  const NodeId v = g.AddRecord(MakeRecord({{7, -50.0}}), kWeight);
  const NodeId m = *g.FindMacNode(rf::MacAddress(7));
  ASSERT_EQ(g.NeighborsOf(v).size(), 1u);
  ASSERT_EQ(g.NeighborsOf(m).size(), 1u);
  EXPECT_EQ(g.NeighborsOf(v)[0].node, m);
  EXPECT_EQ(g.NeighborsOf(m)[0].node, v);
  EXPECT_DOUBLE_EQ(g.NeighborsOf(v)[0].weight, 70.0);
}

TEST(BipartiteGraphTest, EmptyRecordMakesIsolatedNode) {
  BipartiteGraph g;
  const NodeId v = g.AddRecord(rf::SignalRecord(), kWeight);
  EXPECT_EQ(g.NumRecords(), 1u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.NeighborsOf(v).empty());
}

TEST(BipartiteGraphTest, EdgesListMatchesAdjacency) {
  BipartiteGraph g;
  g.AddRecord(MakeRecord({{1, -66.0}, {2, -60.0}}), kWeight);
  g.AddRecord(MakeRecord({{2, -70.0}, {3, -70.0}}), kWeight);
  const std::vector<Edge> edges = g.Edges();
  ASSERT_EQ(edges.size(), 4u);
  double total = 0.0;
  for (const Edge& e : edges) {
    EXPECT_EQ(g.TypeOf(e.record), NodeType::kRecord);
    EXPECT_EQ(g.TypeOf(e.mac), NodeType::kMac);
    total += e.weight;
  }
  EXPECT_DOUBLE_EQ(total, g.TotalEdgeWeight());
}

TEST(BipartiteGraphTest, RemoveMacNode) {
  BipartiteGraph g;
  const NodeId v1 = g.AddRecord(MakeRecord({{1, -66.0}, {2, -60.0}}), kWeight);
  g.AddRecord(MakeRecord({{2, -70.0}, {3, -70.0}}), kWeight);
  EXPECT_TRUE(g.RemoveMacNode(rf::MacAddress(2)));
  EXPECT_EQ(g.NumMacs(), 2u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_FALSE(g.FindMacNode(rf::MacAddress(2)).has_value());
  EXPECT_EQ(g.Degree(v1), 1u);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(v1), 54.0);
  // Removing again reports false.
  EXPECT_FALSE(g.RemoveMacNode(rf::MacAddress(2)));
  // Unknown MAC reports false.
  EXPECT_FALSE(g.RemoveMacNode(rf::MacAddress(99)));
}

TEST(BipartiteGraphTest, ReAddingRemovedMacThrows) {
  BipartiteGraph g;
  g.AddRecord(MakeRecord({{1, -66.0}}), kWeight);
  ASSERT_TRUE(g.RemoveMacNode(rf::MacAddress(1)));
  // The paper models AP removal as permanent; a fresh install gets a new
  // BSSID in practice, so re-adding the dead MAC is a caller bug.
  EXPECT_THROW(g.AddRecord(MakeRecord({{1, -60.0}}), kWeight), Error);
}

TEST(BipartiteGraphTest, FromRecordsBatchMatchesIncremental) {
  std::vector<rf::SignalRecord> records;
  records.push_back(MakeRecord({{1, -66.0}, {2, -60.0}}));
  records.push_back(MakeRecord({{2, -70.0}, {3, -70.0}}));
  const BipartiteGraph batch = BipartiteGraph::FromRecords(records, kWeight);
  BipartiteGraph incremental;
  for (const auto& r : records) incremental.AddRecord(r, kWeight);
  EXPECT_EQ(batch.NumNodes(), incremental.NumNodes());
  EXPECT_EQ(batch.NumEdges(), incremental.NumEdges());
  EXPECT_DOUBLE_EQ(batch.TotalEdgeWeight(), incremental.TotalEdgeWeight());
}

TEST(BipartiteGraphTest, GrowsIncrementallyAfterQueries) {
  BipartiteGraph g;
  g.AddRecord(MakeRecord({{1, -60.0}}), kWeight);
  const std::size_t nodes_before = g.NumNodes();
  g.AddRecord(MakeRecord({{1, -65.0}, {2, -70.0}}), kWeight);
  EXPECT_EQ(g.NumNodes(), nodes_before + 2);  // record + new MAC 2
  EXPECT_EQ(g.NumEdges(), 3u);
}

TEST(BipartiteGraphTest, BadNodeIdsThrow) {
  BipartiteGraph g;
  g.AddRecord(MakeRecord({{1, -60.0}}), kWeight);
  EXPECT_THROW(g.TypeOf(99), Error);
  EXPECT_THROW(g.NeighborsOf(99), Error);
  EXPECT_THROW(g.WeightedDegree(99), Error);
  EXPECT_THROW(g.IsActive(99), Error);
}

TEST(BipartiteGraphTest, NonPositiveWeightRejected) {
  BipartiteGraph g;
  EXPECT_THROW(g.AddRecord(MakeRecord({{1, -130.0}}), OffsetWeight(120.0)),
               Error);
}

}  // namespace
}  // namespace grafics::graph
