#include "cluster/knn_classifier.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace grafics::cluster {
namespace {

Matrix TwoBlobReferences() {
  // 5 points near x=0 (floor 1), 5 near x=10 (floor 2).
  Matrix refs(10, 1);
  for (int i = 0; i < 5; ++i) refs(i, 0) = 0.1 * i;
  for (int i = 5; i < 10; ++i) refs(i, 0) = 10.0 + 0.1 * i;
  return refs;
}

std::vector<rf::FloorId> TwoBlobLabels() {
  return {1, 1, 1, 1, 1, 2, 2, 2, 2, 2};
}

TEST(KnnClassifierTest, PredictsMajorityBlob) {
  const KnnClassifier knn(TwoBlobReferences(), TwoBlobLabels());
  EXPECT_EQ(knn.Predict(std::vector<double>{0.2}), 1);
  EXPECT_EQ(knn.Predict(std::vector<double>{10.2}), 2);
}

TEST(KnnClassifierTest, KOneIsNearestNeighbor) {
  KnnConfig config;
  config.k = 1;
  const KnnClassifier knn(TwoBlobReferences(), TwoBlobLabels(), config);
  // Point closer to the floor-2 blob even though near the midpoint.
  EXPECT_EQ(knn.Predict(std::vector<double>{5.5}), 2);
  EXPECT_EQ(knn.Predict(std::vector<double>{4.5}), 1);
}

TEST(KnnClassifierTest, DistanceWeightingBreaksVoteCounts) {
  // Two references of floor 9 far away, one of floor 3 very close, k=3:
  // inverse-distance weighting must pick floor 3 despite 2-vs-1 votes.
  Matrix refs(3, 1);
  refs(0, 0) = 0.001;
  refs(1, 0) = 50.0;
  refs(2, 0) = 51.0;
  KnnConfig config;
  config.k = 3;
  const KnnClassifier knn(refs, {3, 9, 9}, config);
  EXPECT_EQ(knn.Predict(std::vector<double>{0.0}), 3);
}

TEST(KnnClassifierTest, KLargerThanReferencesUsesAll) {
  KnnConfig config;
  config.k = 100;
  const KnnClassifier knn(TwoBlobReferences(), TwoBlobLabels(), config);
  EXPECT_EQ(knn.Predict(std::vector<double>{-1.0}), 1);
}

TEST(KnnClassifierTest, NeighborsSortedByDistance) {
  const KnnClassifier knn(TwoBlobReferences(), TwoBlobLabels());
  const auto neighbors = knn.Neighbors(std::vector<double>{0.0});
  ASSERT_EQ(neighbors.size(), 5u);
  for (std::size_t i = 1; i < neighbors.size(); ++i) {
    EXPECT_GE(neighbors[i].second, neighbors[i - 1].second);
  }
  EXPECT_EQ(neighbors[0].first, 0u);
}

TEST(KnnClassifierTest, Validation) {
  EXPECT_THROW(KnnClassifier(Matrix(2, 1), std::vector<rf::FloorId>{1}),
               Error);
  EXPECT_THROW(KnnClassifier(Matrix(0, 1), std::vector<rf::FloorId>{}),
               Error);
  KnnConfig bad;
  bad.k = 0;
  EXPECT_THROW(KnnClassifier(TwoBlobReferences(), TwoBlobLabels(), bad),
               Error);
  const KnnClassifier knn(TwoBlobReferences(), TwoBlobLabels());
  EXPECT_THROW(knn.Predict(std::vector<double>{1.0, 2.0}), Error);
}

TEST(KnnClassifierTest, FromClusteringUsesVirtualLabels) {
  // 4 points, clusters {0,1} -> floor 7, {2,3} -> unlabeled.
  Matrix points(4, 1);
  points(0, 0) = 0.0;
  points(1, 0) = 1.0;
  points(2, 0) = 100.0;
  points(3, 0) = 101.0;
  ClusteringResult clustering;
  clustering.cluster_of_point = {0, 0, 1, 1};
  clustering.cluster_label = {7, std::nullopt};
  const KnnClassifier knn(points, clustering);
  EXPECT_EQ(knn.num_references(), 2u);  // unlabeled cluster excluded
  EXPECT_EQ(knn.Predict(std::vector<double>{200.0}), 7);
}

TEST(KnnClassifierTest, FromClusteringAllUnlabeledThrows) {
  Matrix points(2, 1);
  ClusteringResult clustering;
  clustering.cluster_of_point = {0, 0};
  clustering.cluster_label = {std::nullopt};
  EXPECT_THROW(KnnClassifier(points, clustering), Error);
}

}  // namespace
}  // namespace grafics::cluster
