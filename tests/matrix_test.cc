#include "common/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"

namespace grafics {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
  m.Fill(-2.0);
  EXPECT_DOUBLE_EQ(m(1, 2), -2.0);
}

TEST(MatrixTest, IdentityDiagonal) {
  const Matrix eye = Matrix::Identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(eye(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_NO_THROW(m.At(1, 1));
  EXPECT_THROW(m.At(2, 0), Error);
  EXPECT_THROW(m.At(0, 2), Error);
}

TEST(MatrixTest, RowSpanWritesThrough) {
  Matrix m(2, 3);
  auto row = m.Row(1);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(MatrixTest, TransposedRoundTrip) {
  Matrix m(2, 3);
  int v = 0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  }
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.Transposed(), m);
  EXPECT_DOUBLE_EQ(t(2, 1), m(1, 2));
}

TEST(MatrixTest, ArithmeticOperators) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 2.0);
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 3.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 1.0);
  const Matrix scaled = a * 4.0;
  EXPECT_DOUBLE_EQ(scaled(0, 1), 4.0);
}

TEST(MatrixTest, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(a -= b, Error);
}

TEST(MatrixTest, MatMulKnownProduct) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  const Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, MatMulDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.MatMul(b), Error);
}

TEST(MatrixTest, MatVecAndTransposedMatVec) {
  Matrix a(2, 3);
  double av[] = {1, 2, 3, 4, 5, 6};
  std::copy(av, av + 6, a.data());
  const std::vector<double> x = {1.0, 0.0, -1.0};
  const std::vector<double> y = a.MatVec(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);

  const std::vector<double> z = {1.0, 1.0};
  const std::vector<double> w = a.TransposedMatVec(z);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 5.0);
  EXPECT_DOUBLE_EQ(w[1], 7.0);
  EXPECT_DOUBLE_EQ(w[2], 9.0);
}

TEST(MatrixTest, MatVecDimensionMismatchThrows) {
  const Matrix a(2, 3);
  EXPECT_THROW(a.MatVec(std::vector<double>{1.0, 2.0}), Error);
  EXPECT_THROW(a.MatVec(std::vector<double>(4, 0.0)), Error);
  EXPECT_THROW(a.TransposedMatVec(std::vector<double>{1.0, 2.0, 3.0}), Error);
  EXPECT_THROW(a.TransposedMatVec(std::vector<double>{}), Error);
}

TEST(MatrixTest, MatVecMatchesPerRowDot) {
  Rng rng(7);
  const Matrix a = Matrix::Random(5, 9, rng);
  std::vector<double> x(9);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  const std::vector<double> y = a.MatVec(x);
  ASSERT_EQ(y.size(), 5u);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    EXPECT_DOUBLE_EQ(y[r], Dot(a.Row(r), x));
  }
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(2, 2);
  m(0, 0) = 3.0;
  m(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, RandomWithinBounds) {
  Rng rng(1);
  const Matrix m = Matrix::Random(10, 10, rng, -0.25, 0.25);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (double v : m.Row(r)) {
      EXPECT_GE(v, -0.25);
      EXPECT_LT(v, 0.25);
    }
  }
}

TEST(VectorMathTest, DotAndNorm) {
  const std::vector<double> a = {1.0, 2.0, 2.0};
  const std::vector<double> b = {2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(L2Norm(a), 3.0);
}

TEST(VectorMathTest, DotMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(Dot(a, b), Error);
}

TEST(VectorMathTest, SquaredL2Distance) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {4.0, 6.0};
  EXPECT_DOUBLE_EQ(SquaredL2Distance(a, b), 25.0);
}

TEST(VectorMathTest, CosineDistanceProperties) {
  const std::vector<double> a = {1.0, 0.0};
  const std::vector<double> b = {0.0, 2.0};
  const std::vector<double> c = {3.0, 0.0};
  const std::vector<double> minus_a = {-5.0, 0.0};
  EXPECT_NEAR(CosineDistance(a, b), 1.0, 1e-12);   // orthogonal
  EXPECT_NEAR(CosineDistance(a, c), 0.0, 1e-12);   // parallel
  EXPECT_NEAR(CosineDistance(a, minus_a), 2.0, 1e-12);  // opposite
}

TEST(VectorMathTest, CosineDistanceZeroVectorConvention) {
  const std::vector<double> zero = {0.0, 0.0};
  const std::vector<double> a = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(CosineDistance(zero, a), 1.0);
}

TEST(VectorMathTest, AxpyAndScale) {
  const std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 20.0};
  Axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  Scale(y, 0.5);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
}

TEST(VectorMathTest, SigmoidStableAndSymmetric) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace grafics
