// Failure-injection and edge-case tests: degenerate datasets, adversarial
// online inputs, and pathological configurations the pipeline must survive
// (either by handling them or by failing fast with a clear error).
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.h"
#include "core/grafics.h"
#include "synth/presets.h"

namespace grafics::core {
namespace {

rf::SignalRecord MakeRecord(std::initializer_list<std::pair<int, double>> obs,
                            std::optional<rf::FloorId> floor = std::nullopt) {
  rf::SignalRecord r;
  for (const auto& [mac, rssi] : obs) {
    r.Add(rf::MacAddress(static_cast<std::uint64_t>(mac)), rssi);
  }
  r.set_floor(floor);
  return r;
}

GraficsConfig TinyConfig() {
  GraficsConfig config;
  // Tiny graphs have so few edges that edge-sampling SGD needs many passes
  // per edge to converge; this stays fast because |E| is minuscule.
  config.trainer.samples_per_edge = 500;
  config.online_refine_iterations = 400;
  return config;
}

TEST(FailureInjectionTest, SingleFloorBuildingAlwaysPredictsThatFloor) {
  // Degenerate but legal: a one-story building.
  std::vector<rf::SignalRecord> records;
  Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    rf::SignalRecord r;
    for (int m = 0; m < 5; ++m) {
      r.Add(rf::MacAddress(static_cast<std::uint64_t>(1 + (i + m) % 12)),
            rng.Uniform(-80.0, -40.0));
    }
    r.set_floor(i < 2 ? std::optional<rf::FloorId>(0) : std::nullopt);
    records.push_back(std::move(r));
  }
  Grafics system(TinyConfig());
  system.Train(records);
  const auto prediction = system.Predict(records[10]);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(*prediction, 0);
}

TEST(FailureInjectionTest, TwoRecordsMinimalTraining) {
  Grafics system(TinyConfig());
  system.Train({MakeRecord({{1, -50.0}, {2, -60.0}}, 0),
                MakeRecord({{2, -55.0}, {3, -65.0}}, 1)});
  const auto prediction = system.Predict(MakeRecord({{1, -52.0}}));
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(*prediction, 0);
}

TEST(FailureInjectionTest, FloorWithoutAnyLabelGetsAbsorbed) {
  // Records from floor 2 exist but no labeled sample for it: the system
  // must still train and classify them as *some* labeled floor rather than
  // crash. (This is the paper's behaviour: clusters are named only by
  // labeled samples.)
  auto config = synth::CampusBuildingConfig(3, 40);
  auto sim = config.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  for (auto& record : dataset.mutable_records()) {
    if (record.floor() == 2) record.set_floor(std::nullopt);
  }
  Rng rng(5);
  dataset.KeepLabelsPerFloor(2, rng);
  Grafics system(TinyConfig());
  system.Train(dataset.records());
  for (const auto& label : system.clustering().cluster_label) {
    ASSERT_TRUE(label.has_value());
    EXPECT_NE(*label, 2);
  }
}

TEST(FailureInjectionTest, OnlineRecordMixingKnownAndUnknownMacs) {
  Grafics system(TinyConfig());
  system.Train({MakeRecord({{1, -50.0}, {2, -60.0}}, 0),
                MakeRecord({{3, -55.0}, {4, -65.0}}, 1),
                MakeRecord({{1, -52.0}, {2, -61.0}}),
                MakeRecord({{3, -53.0}, {4, -64.0}})});
  // Half the MACs are new: the record is still classified via the known
  // half. Predict is snapshot-isolated, so the unseen MACs only become
  // graph nodes once the record is folded in with Update.
  const std::size_t macs_before = system.graph().NumMacs();
  const rf::SignalRecord mixed =
      MakeRecord({{1, -50.0}, {99, -40.0}, {98, -45.0}});
  const auto prediction = system.Predict(mixed);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(*prediction, 0);
  EXPECT_EQ(system.graph().NumMacs(), macs_before);
  EXPECT_EQ(system.Update({mixed}), 1u);
  EXPECT_EQ(system.graph().NumMacs(), macs_before + 2);
}

TEST(FailureInjectionTest, ExtremeRssValuesSurvive) {
  // RSS at the edges of the radio reporting range must not break the
  // weight function (alpha = 120 keeps -119.9 positive).
  Grafics system(TinyConfig());
  system.Train({MakeRecord({{1, -119.9}, {2, -20.0}}, 0),
                MakeRecord({{2, -119.5}, {3, -21.0}}, 1)});
  EXPECT_TRUE(system.Predict(MakeRecord({{1, -119.0}})).has_value());
}

TEST(FailureInjectionTest, OutOfRangeRssFailsFast) {
  Grafics system(TinyConfig());
  EXPECT_THROW(system.Train({MakeRecord({{1, -130.0}}, 0)}), Error);
}

TEST(FailureInjectionTest, DuplicateIdenticalRecordsAreFine) {
  std::vector<rf::SignalRecord> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back(MakeRecord({{1, -50.0}, {2, -60.0}},
                                 i == 0 ? std::optional<rf::FloorId>(0)
                                        : std::nullopt));
  }
  for (int i = 0; i < 20; ++i) {
    records.push_back(MakeRecord({{5, -50.0}, {6, -60.0}},
                                 i == 0 ? std::optional<rf::FloorId>(1)
                                        : std::nullopt));
  }
  Grafics system(TinyConfig());
  system.Train(records);
  EXPECT_EQ(*system.Predict(MakeRecord({{5, -51.0}})), 1);
}

TEST(FailureInjectionTest, ManyFloorsFewRecordsEach) {
  // 10 floors x 6 records stresses the constraint bookkeeping.
  std::vector<rf::SignalRecord> records;
  Rng rng(9);
  for (int floor = 0; floor < 10; ++floor) {
    for (int i = 0; i < 6; ++i) {
      rf::SignalRecord r;
      for (int m = 0; m < 4; ++m) {
        r.Add(rf::MacAddress(static_cast<std::uint64_t>(floor * 10 + m + 1)),
              rng.Uniform(-70.0, -40.0));
      }
      r.set_floor(i == 0 ? std::optional<rf::FloorId>(floor) : std::nullopt);
      records.push_back(std::move(r));
    }
  }
  Grafics system(TinyConfig());
  system.Train(records);
  EXPECT_EQ(system.clustering().num_clusters(), 10u);
  // Disjoint per-floor MAC sets: prediction should be exact.
  EXPECT_EQ(*system.Predict(MakeRecord({{71, -50.0}, {72, -55.0}})), 7);
}

TEST(FailureInjectionTest, RetrainReplacesModel) {
  Grafics system(TinyConfig());
  system.Train({MakeRecord({{1, -50.0}}, 0), MakeRecord({{2, -50.0}}, 1)});
  EXPECT_EQ(*system.Predict(MakeRecord({{1, -55.0}})), 0);
  // Retrain with flipped labels: the model must reflect the new labels.
  system.Train({MakeRecord({{1, -50.0}}, 5), MakeRecord({{2, -50.0}}, 6)});
  EXPECT_EQ(*system.Predict(MakeRecord({{1, -55.0}})), 5);
  // Fresh graph only: predictions are snapshot-isolated and never grow it.
  EXPECT_EQ(system.graph().NumRecords(), 2u);
}

TEST(FailureInjectionTest, HarnessRejectsDatasetTooSmallToSplit) {
  rf::Dataset tiny("tiny");
  tiny.Add(MakeRecord({{1, -50.0}}, 0));
  ExperimentConfig config;
  EXPECT_THROW(RunExperiment(Algorithm::kGrafics, tiny, config, 1),
               Error);
}

TEST(FailureInjectionTest, ZeroRefinementIterationsStillPredicts) {
  // With 0 SGD refinement steps the warm start alone places the node.
  GraficsConfig config = TinyConfig();
  config.online_refine_iterations = 0;
  Grafics system(config);
  system.Train({MakeRecord({{1, -50.0}, {2, -60.0}}, 0),
                MakeRecord({{3, -55.0}, {4, -65.0}}, 1),
                MakeRecord({{1, -52.0}, {2, -62.0}}),
                MakeRecord({{3, -53.0}, {4, -63.0}})});
  EXPECT_TRUE(system.Predict(MakeRecord({{1, -50.0}})).has_value());
}

TEST(FailureInjectionTest, PredictionsAreStableAcrossRepeats) {
  // Predicting the same record twice adds two graph nodes but must give
  // the same answer (the base model is frozen).
  auto config = synth::CampusBuildingConfig(21, 40);
  auto sim = config.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(3);
  dataset.KeepLabelsPerFloor(3, rng);
  Grafics system(TinyConfig());
  system.Train(dataset.records());
  const rf::SignalRecord probe = sim.MeasureAt({20.0, 20.0, 1.2}, 0);
  const auto first = system.Predict(probe);
  const auto second = system.Predict(probe);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);
}

}  // namespace
}  // namespace grafics::core
