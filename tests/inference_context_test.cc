// Tests for the snapshot-isolated serving engine: InferenceContext and the
// parallel PredictBatch fan-out.
#include <gtest/gtest.h>

#include "core/grafics.h"
#include "core/inference_context.h"
#include "synth/presets.h"

namespace grafics::core {
namespace {

GraficsConfig FastConfig() {
  GraficsConfig config;
  config.trainer.samples_per_edge = 60;
  config.online_refine_iterations = 300;
  return config;
}

/// Small trained system plus held-out queries shared by the tests.
struct Fixture {
  Grafics system{FastConfig()};
  std::vector<rf::SignalRecord> queries;

  explicit Fixture(std::uint64_t seed = 53) {
    auto config = synth::CampusBuildingConfig(seed, 60);
    auto sim = config.MakeSimulator();
    rf::Dataset dataset = sim.GenerateDataset();
    Rng rng(seed + 1);
    auto [train, test] = dataset.TrainTestSplit(0.7, rng);
    train.KeepLabelsPerFloor(4, rng);
    system.Train(train.records());
    queries.assign(test.records().begin(), test.records().end());
  }
};

TEST(InferenceContextTest, RequiresTrainedModel) {
  Grafics system(FastConfig());
  EXPECT_THROW(system.MakeContext(), Error);
}

TEST(InferenceContextTest, PredictLeavesTrainedModelUntouched) {
  Fixture f;
  const std::size_t nodes_before = f.system.graph().NumNodes();
  const std::size_t records_before = f.system.graph().NumRecords();
  const std::size_t macs_before = f.system.graph().NumMacs();
  const std::size_t store_rows_before =
      f.system.embedding_store().num_nodes();
  const cluster::CentroidClassifier centroids_before = f.system.classifier();

  InferenceContext context(f.system);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < 10 && i < f.queries.size(); ++i) {
    if (context.Predict(f.queries[i]).has_value()) ++accepted;
  }
  EXPECT_GT(accepted, 0u);

  EXPECT_EQ(f.system.graph().NumNodes(), nodes_before);
  EXPECT_EQ(f.system.graph().NumRecords(), records_before);
  EXPECT_EQ(f.system.graph().NumMacs(), macs_before);
  EXPECT_EQ(f.system.embedding_store().num_nodes(), store_rows_before);
  EXPECT_EQ(f.system.classifier(), centroids_before);
}

TEST(InferenceContextTest, PredictionsAreOrderIndependent) {
  Fixture f;
  ASSERT_GE(f.queries.size(), 3u);
  // Serve the same queries in two different orders through fresh contexts:
  // snapshot isolation means the results per query must match exactly.
  InferenceContext forward(f.system);
  InferenceContext backward(f.system);
  std::vector<std::optional<rf::FloorId>> a(3);
  std::vector<std::optional<rf::FloorId>> b(3);
  for (std::size_t i = 0; i < 3; ++i) a[i] = forward.Predict(f.queries[i]);
  for (std::size_t i = 3; i-- > 0;) b[i] = backward.Predict(f.queries[i]);
  EXPECT_EQ(a, b);
}

TEST(InferenceContextTest, ReusedContextMatchesFreshContexts) {
  Fixture f;
  InferenceContext reused(f.system);
  for (std::size_t i = 0; i < 5 && i < f.queries.size(); ++i) {
    InferenceContext fresh(f.system);
    EXPECT_EQ(reused.Predict(f.queries[i]), fresh.Predict(f.queries[i]));
  }
}

TEST(InferenceContextTest, DiscardsAlienAndEmptyRecords) {
  Fixture f;
  InferenceContext context(f.system);
  rf::SignalRecord alien;
  alien.Add(rf::MacAddress(0xABCDEF), -50.0);
  EXPECT_FALSE(context.Predict(alien).has_value());
  EXPECT_FALSE(context.Predict(rf::SignalRecord()).has_value());
  EXPECT_THROW(context.QueryEmbedding(), Error);
}

TEST(InferenceContextTest, QueryEmbeddingHasTrainedDimension) {
  Fixture f;
  InferenceContext context(f.system);
  ASSERT_TRUE(context.Predict(f.queries[0]).has_value());
  EXPECT_EQ(context.QueryEmbedding().size(), f.system.config().trainer.dim);
}

TEST(PredictBatchTest, ParallelIsBitIdenticalToSerial) {
  Fixture f;
  const auto serial = f.system.PredictBatch(f.queries, {.num_threads = 1});
  const auto parallel = f.system.PredictBatch(f.queries, {.num_threads = 4});
  EXPECT_EQ(serial, parallel);
}

TEST(PredictBatchTest, ConstBatchLeavesModelUntouched) {
  Fixture f;
  const std::size_t nodes_before = f.system.graph().NumNodes();
  const std::size_t store_rows_before =
      f.system.embedding_store().num_nodes();
  const Grafics& const_system = f.system;
  const auto predictions =
      const_system.PredictBatch(f.queries, {.num_threads = 2});
  EXPECT_EQ(predictions.size(), f.queries.size());
  EXPECT_EQ(f.system.graph().NumNodes(), nodes_before);
  EXPECT_EQ(f.system.embedding_store().num_nodes(), store_rows_before);
  // keep=true is a mutation and must be rejected on a const model.
  EXPECT_THROW(const_system.PredictBatch(f.queries, {.keep = true}), Error);
}

TEST(PredictBatchTest, KeepFoldsAcceptedRecordsBackIn) {
  Fixture f;
  const std::size_t records_before = f.system.graph().NumRecords();
  const std::size_t clusters_before = f.system.clustering().num_clusters();

  std::vector<rf::SignalRecord> batch(f.queries.begin(),
                                      f.queries.begin() + 4);
  rf::SignalRecord alien;  // rejected: must not be folded in
  alien.Add(rf::MacAddress(0xFEEDBEEF), -42.0);
  batch.push_back(alien);

  const auto predictions =
      f.system.PredictBatch(batch, {.num_threads = 2, .keep = true});
  std::size_t accepted = 0;
  for (const auto& p : predictions) {
    if (p.has_value()) ++accepted;
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(f.system.graph().NumRecords(), records_before + accepted);
  // Update semantics: clusters and centroids stay untouched.
  EXPECT_EQ(f.system.clustering().num_clusters(), clusters_before);
}

}  // namespace
}  // namespace grafics::core
