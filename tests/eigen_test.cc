#include "common/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace grafics {
namespace {

TEST(EigenTest, NonSquareThrows) {
  EXPECT_THROW(JacobiEigenDecomposition(Matrix(2, 3)), Error);
}

TEST(EigenTest, DiagonalMatrixEigenvaluesSortedDescending) {
  Matrix m(3, 3);
  m(0, 0) = 1.0;
  m(1, 1) = 5.0;
  m(2, 2) = 3.0;
  const EigenDecomposition eig = JacobiEigenDecomposition(m);
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 5.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-10);
}

TEST(EigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m(0, 0) = 2.0;
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  m(1, 1) = 2.0;
  const EigenDecomposition eig = JacobiEigenDecomposition(m);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.eigenvectors(0, 0)), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(std::abs(eig.eigenvectors(1, 0)), std::sqrt(0.5), 1e-8);
}

TEST(EigenTest, ReconstructsRandomSymmetricMatrix) {
  Rng rng(5);
  const std::size_t n = 12;
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = rng.Uniform(-1.0, 1.0);
      m(j, i) = m(i, j);
    }
  }
  const EigenDecomposition eig = JacobiEigenDecomposition(m);
  // Reconstruct A = V diag(lambda) V^T.
  Matrix lambda(n, n);
  for (std::size_t i = 0; i < n; ++i) lambda(i, i) = eig.eigenvalues[i];
  const Matrix reconstructed =
      eig.eigenvectors.MatMul(lambda).MatMul(eig.eigenvectors.Transposed());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(reconstructed(i, j), m(i, j), 1e-8);
    }
  }
}

TEST(EigenTest, EigenvectorsOrthonormal) {
  Rng rng(7);
  const std::size_t n = 8;
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = rng.Normal();
      m(j, i) = m(i, j);
    }
  }
  const EigenDecomposition eig = JacobiEigenDecomposition(m);
  const Matrix gram =
      eig.eigenvectors.Transposed().MatMul(eig.eigenvectors);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(EigenTest, TraceEqualsEigenvalueSum) {
  Rng rng(11);
  const std::size_t n = 10;
  Matrix m(n, n);
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = rng.Uniform(-2.0, 2.0);
      m(j, i) = m(i, j);
    }
    trace += m(i, i);
  }
  const EigenDecomposition eig = JacobiEigenDecomposition(m);
  double sum = 0.0;
  for (double v : eig.eigenvalues) sum += v;
  EXPECT_NEAR(sum, trace, 1e-9);
}

TEST(EigenTest, PositiveSemiDefiniteGramMatrix) {
  Rng rng(13);
  Matrix x = Matrix::RandomNormal(6, 4, rng, 1.0);
  const Matrix gram = x.MatMul(x.Transposed());  // rank <= 4, PSD
  const EigenDecomposition eig = JacobiEigenDecomposition(gram);
  for (double v : eig.eigenvalues) EXPECT_GT(v, -1e-9);
  // Rank deficiency: last two eigenvalues ~ 0.
  EXPECT_NEAR(eig.eigenvalues[4], 0.0, 1e-9);
  EXPECT_NEAR(eig.eigenvalues[5], 0.0, 1e-9);
}

}  // namespace
}  // namespace grafics
