#include "cluster/centroid_classifier.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace grafics::cluster {
namespace {

TEST(CentroidClassifierTest, ExplicitCentroidsPredictNearest) {
  Matrix centroids(2, 2);
  centroids(0, 0) = 0.0;
  centroids(0, 1) = 0.0;
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 0.0;
  const CentroidClassifier classifier(centroids, {3, 7});
  EXPECT_EQ(classifier.Predict(std::vector<double>{1.0, 1.0}), 3);
  EXPECT_EQ(classifier.Predict(std::vector<double>{9.0, -1.0}), 7);
}

TEST(CentroidClassifierTest, NearestReportsDistance) {
  Matrix centroids(1, 2);
  centroids(0, 0) = 3.0;
  centroids(0, 1) = 4.0;
  const CentroidClassifier classifier(centroids, {1});
  const auto [index, dist] =
      classifier.Nearest(std::vector<double>{0.0, 0.0});
  EXPECT_EQ(index, 0u);
  EXPECT_DOUBLE_EQ(dist, 5.0);
}

TEST(CentroidClassifierTest, DimensionMismatchThrows) {
  const CentroidClassifier classifier(Matrix(1, 2), {1});
  EXPECT_THROW(classifier.Predict(std::vector<double>{1.0}), Error);
}

TEST(CentroidClassifierTest, MismatchedLabelsThrow) {
  EXPECT_THROW(CentroidClassifier(Matrix(2, 2), {1}), Error);
}

TEST(CentroidClassifierTest, EmptyThrows) {
  EXPECT_THROW(CentroidClassifier(Matrix(0, 2), std::vector<rf::FloorId>{}),
               Error);
}

TEST(CentroidClassifierTest, FromClusteringComputesMeans) {
  // Points: cluster 0 = {(0,0), (2,0)} labeled floor 4;
  //         cluster 1 = {(10,10)} labeled floor 9.
  Matrix points(3, 2);
  points(1, 0) = 2.0;
  points(2, 0) = 10.0;
  points(2, 1) = 10.0;
  ClusteringResult clustering;
  clustering.cluster_of_point = {0, 0, 1};
  clustering.cluster_label = {4, 9};
  const CentroidClassifier classifier(points, clustering);
  ASSERT_EQ(classifier.num_centroids(), 2u);
  EXPECT_DOUBLE_EQ(classifier.centroid(0)[0], 1.0);  // mean of 0 and 2
  EXPECT_DOUBLE_EQ(classifier.centroid(0)[1], 0.0);
  EXPECT_EQ(classifier.label(0), 4);
  EXPECT_EQ(classifier.Predict(std::vector<double>{0.5, 0.5}), 4);
  EXPECT_EQ(classifier.Predict(std::vector<double>{8.0, 8.0}), 9);
}

TEST(CentroidClassifierTest, SkipsUnlabeledClusters) {
  Matrix points(3, 1);
  points(0, 0) = 0.0;
  points(1, 0) = 5.0;
  points(2, 0) = 10.0;
  ClusteringResult clustering;
  clustering.cluster_of_point = {0, 1, 2};
  clustering.cluster_label = {std::nullopt, 6, std::nullopt};
  const CentroidClassifier classifier(points, clustering);
  EXPECT_EQ(classifier.num_centroids(), 1u);
  // Even a point right on the unlabeled centroid maps to the labeled one.
  EXPECT_EQ(classifier.Predict(std::vector<double>{0.0}), 6);
}

TEST(CentroidClassifierTest, AllUnlabeledThrows) {
  Matrix points(2, 1);
  ClusteringResult clustering;
  clustering.cluster_of_point = {0, 0};
  clustering.cluster_label = {std::nullopt};
  EXPECT_THROW(CentroidClassifier(points, clustering), Error);
}

TEST(CentroidClassifierTest, SizeMismatchWithClusteringThrows) {
  Matrix points(2, 1);
  ClusteringResult clustering;
  clustering.cluster_of_point = {0};
  clustering.cluster_label = {1};
  EXPECT_THROW(CentroidClassifier(points, clustering), Error);
}

}  // namespace
}  // namespace grafics::cluster
