#include "rf/dataset.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.h"
#include "rf/dataset_stats.h"

namespace grafics::rf {
namespace {

SignalRecord MakeRecord(std::initializer_list<std::pair<int, double>> obs,
                        std::optional<FloorId> floor = std::nullopt) {
  SignalRecord r;
  for (const auto& [mac, rssi] : obs) {
    r.Add(MacAddress(static_cast<std::uint64_t>(mac)), rssi);
  }
  r.set_floor(floor);
  return r;
}

Dataset MakeDataset() {
  Dataset ds("test-building");
  ds.Add(MakeRecord({{1, -50.0}, {2, -60.0}}, 0));
  ds.Add(MakeRecord({{2, -55.0}, {3, -65.0}}, 0));
  ds.Add(MakeRecord({{3, -50.0}, {4, -60.0}}, 1));
  ds.Add(MakeRecord({{4, -52.0}, {5, -62.0}}, 1));
  ds.Add(MakeRecord({{5, -58.0}}, std::nullopt));
  return ds;
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset ds = MakeDataset();
  EXPECT_EQ(ds.building_name(), "test-building");
  EXPECT_EQ(ds.size(), 5u);
  EXPECT_EQ(ds.DistinctMacCount(), 5u);
  EXPECT_EQ(ds.LabeledCount(), 4u);
  EXPECT_THROW(ds.record(5), Error);
}

TEST(DatasetTest, FloorsSorted) {
  Dataset ds;
  ds.Add(MakeRecord({{1, -50.0}}, 5));
  ds.Add(MakeRecord({{1, -50.0}}, -1));
  ds.Add(MakeRecord({{1, -50.0}}, 2));
  ds.Add(MakeRecord({{1, -50.0}}, 5));
  const std::vector<FloorId> floors = ds.Floors();
  EXPECT_EQ(floors, (std::vector<FloorId>{-1, 2, 5}));
}

TEST(DatasetTest, RecordsPerFloorCounts) {
  const Dataset ds = MakeDataset();
  const auto counts = ds.RecordsPerFloor();
  EXPECT_EQ(counts.at(0), 2u);
  EXPECT_EQ(counts.at(1), 2u);
  EXPECT_EQ(counts.size(), 2u);  // unlabeled not counted
}

TEST(DatasetTest, KeepLabelsPerFloorStripsExcess) {
  Dataset ds;
  for (int i = 0; i < 20; ++i) ds.Add(MakeRecord({{1, -50.0}}, 0));
  for (int i = 0; i < 20; ++i) ds.Add(MakeRecord({{1, -50.0}}, 1));
  Rng rng(1);
  const auto truth = ds.KeepLabelsPerFloor(3, rng);
  EXPECT_EQ(ds.LabeledCount(), 6u);
  // Ground truth preserved for every record.
  ASSERT_EQ(truth.size(), 40u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(*truth[i], 0);
  for (std::size_t i = 20; i < 40; ++i) EXPECT_EQ(*truth[i], 1);
}

TEST(DatasetTest, KeepLabelsPerFloorMoreThanAvailableKeepsAll) {
  Dataset ds;
  for (int i = 0; i < 5; ++i) ds.Add(MakeRecord({{1, -50.0}}, 0));
  Rng rng(1);
  ds.KeepLabelsPerFloor(100, rng);
  EXPECT_EQ(ds.LabeledCount(), 5u);
}

TEST(DatasetTest, TrainTestSplitSizesAndContent) {
  Dataset ds;
  for (int i = 0; i < 100; ++i) {
    ds.Add(MakeRecord({{i, -50.0}}, i % 3));
  }
  Rng rng(7);
  const auto [train, test] = ds.TrainTestSplit(0.7, rng);
  EXPECT_EQ(train.size(), 70u);
  EXPECT_EQ(test.size(), 30u);
  EXPECT_EQ(train.DistinctMacCount() + test.DistinctMacCount(), 100u);
}

TEST(DatasetTest, TrainTestSplitInvalidRatioThrows) {
  const Dataset ds = MakeDataset();
  Rng rng(1);
  EXPECT_THROW(ds.TrainTestSplit(0.0, rng), Error);
  EXPECT_THROW(ds.TrainTestSplit(1.0, rng), Error);
}

TEST(DatasetTest, TrainTestSplitDeterministicInSeed) {
  const Dataset ds = MakeDataset();
  Rng rng1(9);
  Rng rng2(9);
  const auto [train1, test1] = ds.TrainTestSplit(0.6, rng1);
  const auto [train2, test2] = ds.TrainTestSplit(0.6, rng2);
  EXPECT_EQ(train1.records(), train2.records());
  EXPECT_EQ(test1.records(), test2.records());
}

TEST(DatasetTest, RetainMacFractionDropsMacsAndEmptyRecords) {
  Dataset ds;
  // Record with a single MAC each: dropping the MAC drops the record.
  for (int i = 0; i < 10; ++i) ds.Add(MakeRecord({{i, -50.0}}, 0));
  Rng rng(3);
  ds.RetainMacFraction(0.3, rng);
  EXPECT_EQ(ds.DistinctMacCount(), 3u);
  EXPECT_EQ(ds.size(), 3u);
}

TEST(DatasetTest, RetainMacFractionFullKeepsEverything) {
  Dataset ds = MakeDataset();
  Rng rng(3);
  ds.RetainMacFraction(1.0, rng);
  EXPECT_EQ(ds.size(), 5u);
  EXPECT_EQ(ds.DistinctMacCount(), 5u);
}

TEST(DatasetTest, RetainMacFractionValidation) {
  Dataset ds = MakeDataset();
  Rng rng(3);
  EXPECT_THROW(ds.RetainMacFraction(0.0, rng), Error);
  EXPECT_THROW(ds.RetainMacFraction(1.5, rng), Error);
}

TEST(DatasetTest, CsvRoundTrip) {
  const Dataset ds = MakeDataset();
  const std::string path =
      (std::filesystem::temp_directory_path() / "grafics_dataset_test.csv")
          .string();
  ds.SaveCsv(path);
  const Dataset loaded = Dataset::LoadCsv(path, "test-building");
  ASSERT_EQ(loaded.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded.record(i).floor(), ds.record(i).floor());
    EXPECT_EQ(loaded.record(i).size(), ds.record(i).size());
    for (const Observation& o : ds.record(i).observations()) {
      EXPECT_NEAR(*loaded.record(i).RssiFor(o.mac), o.rssi_dbm, 1e-6);
    }
  }
  std::filesystem::remove(path);
}

TEST(DatasetStatsTest, MacsPerRecord) {
  const Dataset ds = MakeDataset();
  const std::vector<double> counts = MacsPerRecord(ds);
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_DOUBLE_EQ(counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts[4], 1.0);
}

TEST(DatasetStatsTest, PairwiseOverlapAllPairs) {
  Dataset ds;
  ds.Add(MakeRecord({{1, -50.0}, {2, -50.0}}));
  ds.Add(MakeRecord({{2, -50.0}, {3, -50.0}}));
  ds.Add(MakeRecord({{9, -50.0}}));
  Rng rng(1);
  const auto ratios = PairwiseOverlapRatios(ds, 1000, rng);
  ASSERT_EQ(ratios.size(), 3u);  // 3 choose 2
  // Pairs: (0,1) overlap 1/3, (0,2) 0, (1,2) 0.
  double sum = 0.0;
  for (double r : ratios) sum += r;
  EXPECT_NEAR(sum, 1.0 / 3.0, 1e-12);
}

TEST(DatasetStatsTest, PairwiseOverlapSampledCount) {
  Dataset ds;
  for (int i = 0; i < 50; ++i) ds.Add(MakeRecord({{i, -50.0}}));
  Rng rng(1);
  const auto ratios = PairwiseOverlapRatios(ds, 100, rng);
  EXPECT_EQ(ratios.size(), 100u);  // sampled, not all 1225 pairs
}

TEST(DatasetStatsTest, TooFewRecordsGiveEmptyOverlaps) {
  Dataset ds;
  ds.Add(MakeRecord({{1, -50.0}}));
  Rng rng(1);
  EXPECT_TRUE(PairwiseOverlapRatios(ds, 10, rng).empty());
}

}  // namespace
}  // namespace grafics::rf
