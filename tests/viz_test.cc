#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "viz/pca.h"
#include "viz/tsne.h"

namespace grafics::viz {
namespace {

TEST(PcaTest, RecoversDominantDirection) {
  // Points along the diagonal with tiny orthogonal noise: PC1 variance must
  // dominate.
  Rng rng(1);
  Matrix points(50, 2);
  for (std::size_t i = 0; i < 50; ++i) {
    const double t = rng.Uniform(-10.0, 10.0);
    points(i, 0) = t + rng.Normal(0.0, 0.01);
    points(i, 1) = t + rng.Normal(0.0, 0.01);
  }
  const Matrix projected = PcaProject(points, 2);
  double var1 = 0.0;
  double var2 = 0.0;
  for (std::size_t i = 0; i < 50; ++i) {
    var1 += projected(i, 0) * projected(i, 0);
    var2 += projected(i, 1) * projected(i, 1);
  }
  EXPECT_GT(var1, 100.0 * var2);
}

TEST(PcaTest, ProjectionIsCentered) {
  Rng rng(2);
  Matrix points = Matrix::RandomNormal(30, 5, rng, 2.0);
  for (std::size_t i = 0; i < 30; ++i) points(i, 0) += 100.0;  // big offset
  const Matrix projected = PcaProject(points, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    for (std::size_t i = 0; i < 30; ++i) mean += projected(i, c);
    EXPECT_NEAR(mean / 30.0, 0.0, 1e-9);
  }
}

TEST(PcaTest, PreservesPairwiseDistancesAtFullDim) {
  Rng rng(3);
  const Matrix points = Matrix::RandomNormal(20, 4, rng, 1.0);
  const Matrix projected = PcaProject(points, 4);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_NEAR(SquaredL2Distance(points.Row(i), points.Row(j)),
                  SquaredL2Distance(projected.Row(i), projected.Row(j)),
                  1e-8);
    }
  }
}

TEST(PcaTest, Validation) {
  EXPECT_THROW(PcaProject(Matrix(5, 3), 4), Error);
  EXPECT_THROW(PcaProject(Matrix(5, 3), 0), Error);
  EXPECT_THROW(PcaProject(Matrix(1, 3), 2), Error);
}

TEST(TsneTest, OutputShape) {
  Rng rng(4);
  const Matrix points = Matrix::RandomNormal(30, 5, rng, 1.0);
  TsneConfig config;
  config.perplexity = 5.0;
  config.iterations = 50;
  const Matrix y = TsneEmbed(points, config);
  EXPECT_EQ(y.rows(), 30u);
  EXPECT_EQ(y.cols(), 2u);
}

TEST(TsneTest, SeparatesTwoBlobs) {
  Rng rng(5);
  Matrix points(40, 4);
  for (std::size_t i = 0; i < 40; ++i) {
    const double center = i < 20 ? 0.0 : 20.0;
    for (std::size_t c = 0; c < 4; ++c) {
      points(i, c) = center + rng.Normal(0.0, 0.5);
    }
  }
  TsneConfig config;
  config.perplexity = 8.0;
  config.iterations = 300;
  const Matrix y = TsneEmbed(points, config);
  // Mean intra-blob distance far below inter-blob distance.
  double intra = 0.0;
  double inter = 0.0;
  int n_intra = 0;
  int n_inter = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = i + 1; j < 40; ++j) {
      const double d = std::sqrt(SquaredL2Distance(y.Row(i), y.Row(j)));
      if ((i < 20) == (j < 20)) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  EXPECT_LT(intra / n_intra * 2.0, inter / n_inter);
}

TEST(TsneTest, DeterministicInSeed) {
  Rng rng(6);
  const Matrix points = Matrix::RandomNormal(20, 3, rng, 1.0);
  TsneConfig config;
  config.perplexity = 4.0;
  config.iterations = 30;
  EXPECT_EQ(TsneEmbed(points, config), TsneEmbed(points, config));
}

TEST(TsneTest, Validation) {
  EXPECT_THROW(TsneEmbed(Matrix(3, 2)), Error);  // too few points
  Rng rng(7);
  const Matrix points = Matrix::RandomNormal(10, 2, rng, 1.0);
  TsneConfig config;
  config.perplexity = 30.0;  // too large for 10 points
  EXPECT_THROW(TsneEmbed(points, config), Error);
}

}  // namespace
}  // namespace grafics::viz
