#include "embed/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/matrix.h"
#include "embed/embedding_store.h"
#include "graph/weight_function.h"

// Hogwild-style training (num_threads > 1) performs intentionally lock-free
// SGD: concurrent unsynchronized writes to embedding rows are a documented,
// statistically benign race (Niu et al., and the LINE reference code). TSan
// correctly flags them, so the multi-threaded trainer test is skipped under
// thread sanitizer rather than "fixed" with locks that would destroy the
// training throughput the design exists for.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GRAFICS_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define GRAFICS_TSAN 1
#endif

namespace grafics::embed {
namespace {

rf::SignalRecord MakeRecord(std::initializer_list<std::pair<int, double>> obs) {
  rf::SignalRecord r;
  for (const auto& [mac, rssi] : obs) {
    r.Add(rf::MacAddress(static_cast<std::uint64_t>(mac)), rssi);
  }
  return r;
}

/// Two dense communities of records bridged only weakly: records 0-3 share
/// MACs 100-103; records 4-7 share MACs 200-203.
graph::BipartiteGraph TwoCommunityGraph() {
  std::vector<rf::SignalRecord> records;
  for (int r = 0; r < 4; ++r) {
    rf::SignalRecord rec;
    for (int m = 0; m < 4; ++m) {
      rec.Add(rf::MacAddress(static_cast<std::uint64_t>(100 + m)), -55.0);
    }
    records.push_back(std::move(rec));
  }
  for (int r = 0; r < 4; ++r) {
    rf::SignalRecord rec;
    for (int m = 0; m < 4; ++m) {
      rec.Add(rf::MacAddress(static_cast<std::uint64_t>(200 + m)), -55.0);
    }
    records.push_back(std::move(rec));
  }
  return graph::BipartiteGraph::FromRecords(records,
                                            graph::OffsetWeight(120.0));
}

double MeanIntraCommunityDistance(const graph::BipartiteGraph& g,
                                  const EmbeddingStore& store) {
  double sum = 0.0;
  int count = 0;
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      sum += std::sqrt(SquaredL2Distance(store.Ego(g.RecordNode(a)),
                                         store.Ego(g.RecordNode(b))));
      sum += std::sqrt(SquaredL2Distance(store.Ego(g.RecordNode(4 + a)),
                                         store.Ego(g.RecordNode(4 + b))));
      count += 2;
    }
  }
  return sum / count;
}

double MeanInterCommunityDistance(const graph::BipartiteGraph& g,
                                  const EmbeddingStore& store) {
  double sum = 0.0;
  int count = 0;
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 4; b < 8; ++b) {
      sum += std::sqrt(SquaredL2Distance(store.Ego(g.RecordNode(a)),
                                         store.Ego(g.RecordNode(b))));
      ++count;
    }
  }
  return sum / count;
}

TEST(EmbeddingStoreTest, InitializationShapes) {
  Rng rng(1);
  EmbeddingStore store(10, 8, rng);
  EXPECT_EQ(store.num_nodes(), 10u);
  EXPECT_EQ(store.dim(), 8u);
  // Ego initialized small-uniform, context zero (LINE reference init).
  for (graph::NodeId n = 0; n < 10; ++n) {
    for (double v : store.Ego(n)) {
      EXPECT_LE(std::abs(v), 0.5 / 8.0 + 1e-12);
    }
    for (double v : store.Context(n)) EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(EmbeddingStoreTest, GrowPreservesExistingRows) {
  Rng rng(2);
  EmbeddingStore store(3, 4, rng);
  store.Ego(1)[2] = 0.77;
  store.Grow(2, rng);
  EXPECT_EQ(store.num_nodes(), 5u);
  EXPECT_DOUBLE_EQ(store.Ego(1)[2], 0.77);
}

TEST(EmbeddingStoreTest, ZeroDimThrows) {
  Rng rng(3);
  EXPECT_THROW(EmbeddingStore(3, 0, rng), Error);
}

TEST(NegativeSamplerTest, DistributionFollowsDegreeThreeQuarters) {
  // MAC 1 has degree 3, MACs 2 and 3 degree 1; records have degree 1, 2, 2.
  std::vector<rf::SignalRecord> records;
  records.push_back(MakeRecord({{1, -50.0}}));
  records.push_back(MakeRecord({{1, -50.0}, {2, -60.0}}));
  records.push_back(MakeRecord({{1, -50.0}, {3, -60.0}}));
  const auto g =
      graph::BipartiteGraph::FromRecords(records, graph::OffsetWeight(120.0));
  std::vector<graph::NodeId> nodes;
  const AliasSampler sampler = BuildNegativeSampler(g, &nodes);
  ASSERT_EQ(nodes.size(), g.NumNodes());

  const graph::NodeId mac1 = *g.FindMacNode(rf::MacAddress(1));
  double mac1_prob = 0.0;
  double total_check = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    total_check += sampler.ProbabilityOf(i);
    if (nodes[i] == mac1) mac1_prob = sampler.ProbabilityOf(i);
  }
  EXPECT_NEAR(total_check, 1.0, 1e-12);
  // Degrees: MAC1=3, MAC2=MAC3=1, records r0=1, r1=r2=2.
  const double expected =
      std::pow(3.0, 0.75) /
      (std::pow(3.0, 0.75) + 3.0 + 2.0 * std::pow(2.0, 0.75));
  EXPECT_NEAR(mac1_prob, expected, 1e-12);
}

TEST(TrainerTest, EmptyGraphThrows) {
  graph::BipartiteGraph g;
  EXPECT_THROW(TrainEmbeddings(g, TrainerConfig{}), Error);
}

TEST(TrainerTest, DeterministicSingleThread) {
  const auto g = TwoCommunityGraph();
  TrainerConfig config;
  config.samples_per_edge = 20;
  config.seed = 77;
  const EmbeddingStore a = TrainEmbeddings(g, config);
  const EmbeddingStore b = TrainEmbeddings(g, config);
  EXPECT_EQ(a.ego_matrix(), b.ego_matrix());
  EXPECT_EQ(a.context_matrix(), b.context_matrix());
}

TEST(TrainerTest, DifferentSeedsProduceDifferentEmbeddings) {
  const auto g = TwoCommunityGraph();
  TrainerConfig config;
  config.samples_per_edge = 20;
  config.seed = 1;
  const EmbeddingStore a = TrainEmbeddings(g, config);
  config.seed = 2;
  const EmbeddingStore b = TrainEmbeddings(g, config);
  EXPECT_NE(a.ego_matrix(), b.ego_matrix());
}

struct ObjectiveCase {
  Objective objective;
  const char* name;
};

class TrainerObjectiveTest : public ::testing::TestWithParam<ObjectiveCase> {};

TEST_P(TrainerObjectiveTest, SeparatesCommunities) {
  const auto g = TwoCommunityGraph();
  TrainerConfig config;
  config.objective = GetParam().objective;
  config.samples_per_edge = 400;
  config.dropout = 0.0;
  config.seed = 5;
  const EmbeddingStore store = TrainEmbeddings(g, config);
  const double intra = MeanIntraCommunityDistance(g, store);
  const double inter = MeanInterCommunityDistance(g, store);
  EXPECT_LT(intra * 1.5, inter)
      << GetParam().name << ": intra=" << intra << " inter=" << inter;
}

INSTANTIATE_TEST_SUITE_P(
    AllObjectives, TrainerObjectiveTest,
    ::testing::Values(ObjectiveCase{Objective::kLineFirstOrder, "first"},
                      ObjectiveCase{Objective::kLineSecondOrder, "second"},
                      ObjectiveCase{Objective::kLineBothOrders, "both"},
                      ObjectiveCase{Objective::kELine, "eline"}),
    [](const ::testing::TestParamInfo<ObjectiveCase>& info) {
      return info.param.name;
    });

TEST(TrainerTest, ELineBridgesMultiHopNeighbors) {
  // Paper Fig. 5 scenario: records i and k never share a MAC but both share
  // MACs with a chain of intermediate records. E-LINE should still place i
  // and k closer than unrelated nodes.
  std::vector<rf::SignalRecord> records;
  // Chain: r0 -(A)- r1 -(B)- r2 -(C)- r3, plus an unrelated pair r4-r5.
  records.push_back(MakeRecord({{10, -50.0}, {11, -55.0}}));          // r0: A
  records.push_back(MakeRecord({{11, -50.0}, {12, -55.0}}));          // r1: A,B
  records.push_back(MakeRecord({{12, -50.0}, {13, -55.0}}));          // r2: B,C
  records.push_back(MakeRecord({{13, -50.0}, {14, -55.0}}));          // r3: C
  records.push_back(MakeRecord({{50, -50.0}, {51, -55.0}}));          // r4
  records.push_back(MakeRecord({{51, -50.0}, {52, -55.0}}));          // r5
  const auto g =
      graph::BipartiteGraph::FromRecords(records, graph::OffsetWeight(120.0));

  TrainerConfig config;
  config.objective = Objective::kELine;
  config.samples_per_edge = 600;
  config.dropout = 0.0;
  config.seed = 9;
  const EmbeddingStore store = TrainEmbeddings(g, config);

  const auto dist = [&](std::size_t a, std::size_t b) {
    return std::sqrt(SquaredL2Distance(store.Ego(g.RecordNode(a)),
                                       store.Ego(g.RecordNode(b))));
  };
  // r0 and r3 are 6 hops apart but within the same chain; r0 and r4 are in
  // disconnected components.
  EXPECT_LT(dist(0, 3), dist(0, 4));
  EXPECT_LT(dist(0, 3), dist(0, 5));
}

TEST(TrainerTest, MultiThreadedTrainingSeparatesCommunities) {
#ifdef GRAFICS_TSAN
  GTEST_SKIP() << "Hogwild SGD races by design; see comment at top of file";
#endif
  const auto g = TwoCommunityGraph();
  TrainerConfig config;
  config.samples_per_edge = 400;
  config.num_threads = 4;
  config.dropout = 0.0;
  config.seed = 13;
  const EmbeddingStore store = TrainEmbeddings(g, config);
  EXPECT_LT(MeanIntraCommunityDistance(g, store) * 1.5,
            MeanInterCommunityDistance(g, store));
}

TEST(RefineTest, StoreSizeMismatchThrows) {
  const auto g = TwoCommunityGraph();
  TrainerConfig config;
  config.samples_per_edge = 10;
  EmbeddingStore store = TrainEmbeddings(g, config);
  graph::BipartiteGraph grown = g;
  grown.AddRecord(MakeRecord({{100, -60.0}}), graph::OffsetWeight(120.0));
  const std::vector<graph::NodeId> new_nodes = {
      static_cast<graph::NodeId>(g.NumNodes())};
  EXPECT_THROW(RefineNewNodes(grown, new_nodes, store, config, 10), Error);
}

TEST(RefineTest, NewNodeLandsInItsCommunity) {
  auto g = TwoCommunityGraph();
  TrainerConfig config;
  config.samples_per_edge = 400;
  config.dropout = 0.0;
  config.seed = 21;
  EmbeddingStore store = TrainEmbeddings(g, config);
  const Matrix frozen_ego = store.ego_matrix();

  // New record observing community-1 MACs only.
  const std::size_t nodes_before = g.NumNodes();
  const graph::NodeId new_node = g.AddRecord(
      MakeRecord({{100, -50.0}, {101, -55.0}, {102, -60.0}}),
      graph::OffsetWeight(120.0));
  Rng rng(5);
  store.Grow(g.NumNodes() - nodes_before, rng);
  const std::vector<graph::NodeId> new_nodes = {new_node};
  RefineNewNodes(g, new_nodes, store, config, 300);

  // Base embeddings frozen.
  for (graph::NodeId n = 0; n < nodes_before; ++n) {
    for (std::size_t c = 0; c < store.dim(); ++c) {
      EXPECT_DOUBLE_EQ(store.Ego(n)[c], frozen_ego(n, c));
    }
  }
  // Closer to community 1 than community 2.
  double d1 = 0.0;
  double d2 = 0.0;
  for (std::size_t r = 0; r < 4; ++r) {
    d1 += std::sqrt(SquaredL2Distance(store.Ego(new_node),
                                      store.Ego(g.RecordNode(r))));
    d2 += std::sqrt(SquaredL2Distance(store.Ego(new_node),
                                      store.Ego(g.RecordNode(4 + r))));
  }
  EXPECT_LT(d1, d2);
}

TEST(RefineTest, IsolatedNodeKeepsRandomInit) {
  auto g = TwoCommunityGraph();
  TrainerConfig config;
  config.samples_per_edge = 20;
  EmbeddingStore store = TrainEmbeddings(g, config);
  const std::size_t nodes_before = g.NumNodes();
  const graph::NodeId isolated =
      g.AddRecord(rf::SignalRecord(), graph::OffsetWeight(120.0));
  Rng rng(5);
  store.Grow(1, rng);
  const Matrix before = store.ego_matrix();
  const std::vector<graph::NodeId> new_nodes = {isolated};
  RefineNewNodes(g, new_nodes, store, config, 100);
  EXPECT_EQ(store.ego_matrix(), before);  // nothing to refine
  EXPECT_EQ(nodes_before + 1, g.NumNodes());
}

}  // namespace
}  // namespace grafics::embed
