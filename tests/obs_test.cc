// Tests for the telemetry layer: instrument semantics (counter sync,
// histogram bucket edges), registry resolution rules (stable handles,
// kind/help/bounds conflicts, name validation), Prometheus text exposition
// (cumulative buckets, label escaping), collection hooks and quiescent
// ScopedHook detach, per-request traces, and concurrent updates from many
// threads (the TSan target for the lock-free hot path).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace grafics::obs {
namespace {

TEST(CounterTest, AddAccumulatesAndSyncToIsMonotonic) {
  Registry registry;
  Counter* counter = registry.GetCounter("grafics_test_total", "help");
  counter->Add();
  counter->Add(9);
  EXPECT_EQ(counter->value(), 10u);
  // SyncTo raises to a larger lifetime total...
  counter->SyncTo(25);
  EXPECT_EQ(counter->value(), 25u);
  // ...but a stale (smaller) sync never moves it backward.
  counter->SyncTo(7);
  EXPECT_EQ(counter->value(), 25u);
}

TEST(GaugeTest, SetAddSubAreSigned) {
  Registry registry;
  Gauge* gauge = registry.GetGauge("grafics_test_depth", "help");
  gauge->Set(5);
  gauge->Sub(8);
  EXPECT_EQ(gauge->value(), -3);
  gauge->Add(4);
  EXPECT_EQ(gauge->value(), 1);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  Registry registry;
  Histogram* histogram =
      registry.GetHistogram("grafics_test_us", "help", {10, 20, 30});
  // On-edge values land in the edge's own bucket (le is inclusive)...
  histogram->Observe(10);
  histogram->Observe(20);
  // ...one-past goes to the next bucket, and past the last edge to +Inf.
  histogram->Observe(11);
  histogram->Observe(31);
  histogram->Observe(0);
  EXPECT_EQ(histogram->bucket(0), 2u);  // 10, 0
  EXPECT_EQ(histogram->bucket(1), 2u);  // 20, 11
  EXPECT_EQ(histogram->bucket(2), 0u);
  EXPECT_EQ(histogram->bucket(3), 1u);  // 31 -> +Inf
  EXPECT_EQ(histogram->count(), 5u);
  EXPECT_EQ(histogram->sum(), 10u + 20 + 11 + 31 + 0);
}

TEST(HistogramTest, BucketPresets) {
  EXPECT_EQ(PowerOfTwoBuckets(8),
            (std::vector<std::uint64_t>{1, 2, 4, 8}));
  // Edges never exceed max; 65..100 land in the implicit +Inf bucket.
  EXPECT_EQ(PowerOfTwoBuckets(100),
            (std::vector<std::uint64_t>{1, 2, 4, 8, 16, 32, 64}));
  EXPECT_EQ(PowerOfTwoBuckets(1), (std::vector<std::uint64_t>{1}));
  const std::vector<std::uint64_t> latency = DefaultLatencyBucketsUs();
  ASSERT_FALSE(latency.empty());
  EXPECT_EQ(latency.front(), 50u);
  EXPECT_EQ(latency.back(), 1000000u);
}

TEST(RegistryTest, SameNameAndLabelsResolveTheSameInstrument) {
  Registry registry;
  Counter* a = registry.GetCounter("grafics_test_total", "help",
                                   {{"model", "campus"}});
  Counter* b = registry.GetCounter("grafics_test_total", "help",
                                   {{"model", "campus"}});
  Counter* other = registry.GetCounter("grafics_test_total", "help",
                                       {{"model", "mall"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
}

TEST(RegistryTest, RejectsInvalidNamesAndLabels) {
  Registry registry;
  EXPECT_THROW(registry.GetCounter("latency_total", "help"), Error);
  EXPECT_THROW(registry.GetCounter("grafics_", "help"), Error);
  EXPECT_THROW(registry.GetCounter("grafics_Upper", "help"), Error);
  EXPECT_THROW(registry.GetCounter("grafics_ok-not", "help"), Error);
  EXPECT_THROW(
      registry.GetCounter("grafics_ok_total", "help", {{"0bad", "x"}}),
      Error);
}

TEST(RegistryTest, RejectsConflictingReRegistration) {
  Registry registry;
  registry.GetCounter("grafics_test_total", "help");
  // Same name as a different kind, or with different help text.
  EXPECT_THROW(registry.GetGauge("grafics_test_total", "help"), Error);
  EXPECT_THROW(registry.GetCounter("grafics_test_total", "other"), Error);
  // Histogram bounds must be strictly increasing and identical across the
  // family's series.
  registry.GetHistogram("grafics_test_us", "h", {1, 2}, {{"m", "a"}});
  EXPECT_THROW(registry.GetHistogram("grafics_test_us", "h", {1, 3},
                                     {{"m", "b"}}),
               Error);
  EXPECT_THROW(registry.GetHistogram("grafics_other_us", "h", {2, 2}), Error);
  EXPECT_THROW(registry.GetHistogram("grafics_other_us", "h", {2, 1}), Error);
  EXPECT_THROW(registry.GetHistogram("grafics_other_us", "h", {}), Error);
}

TEST(RegistryTest, RendersPrometheusTextExposition) {
  Registry registry;
  registry.GetCounter("grafics_requests_total", "Requests served.")->Add(3);
  registry.GetGauge("grafics_depth", "Queue depth.")->Set(-2);
  Histogram* histogram =
      registry.GetHistogram("grafics_wait_us", "Wait time.", {10, 20});
  histogram->Observe(5);
  histogram->Observe(15);
  histogram->Observe(99);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP grafics_requests_total Requests served.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE grafics_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("grafics_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE grafics_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("grafics_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE grafics_wait_us histogram\n"),
            std::string::npos);
  // _bucket series are cumulative; +Inf equals _count.
  EXPECT_NE(text.find("grafics_wait_us_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("grafics_wait_us_bucket{le=\"20\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("grafics_wait_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("grafics_wait_us_sum 119\n"), std::string::npos);
  EXPECT_NE(text.find("grafics_wait_us_count 3\n"), std::string::npos);
}

TEST(RegistryTest, EscapesLabelValuesAndHelpText) {
  Registry registry;
  registry
      .GetCounter("grafics_test_total", "backslash \\ and\nnewline",
                  {{"model", "we\"ird\\name\nhere"}})
      ->Add(1);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP grafics_test_total backslash \\\\ and\\n"
                      "newline\n"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "grafics_test_total{model=\"we\\\"ird\\\\name\\nhere\"} 1\n"),
      std::string::npos);
  // The raw (unescaped) forms must not leak into the exposition.
  EXPECT_EQ(text.find("we\"ird"), std::string::npos);
}

TEST(RegistryTest, HistogramBucketLabelsComposeWithSeriesLabels) {
  Registry registry;
  registry
      .GetHistogram("grafics_wait_us", "Wait.", {10}, {{"model", "campus"}})
      ->Observe(4);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(
      text.find("grafics_wait_us_bucket{model=\"campus\",le=\"10\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("grafics_wait_us_sum{model=\"campus\"} 4\n"),
            std::string::npos);
}

TEST(RegistryTest, CollectionHooksRunAtEveryRender) {
  Registry registry;
  int runs = 0;
  const std::uint64_t id = registry.AddHook([&registry, &runs] {
    ++runs;
    // A hook may resolve instruments itself — that is the sync pattern.
    registry.GetGauge("grafics_hook_depth", "Synced.")->Set(runs);
  });
  EXPECT_NE(registry.RenderPrometheus().find("grafics_hook_depth 1\n"),
            std::string::npos);
  EXPECT_NE(registry.RenderPrometheus().find("grafics_hook_depth 2\n"),
            std::string::npos);
  registry.RemoveHook(id);
  registry.RenderPrometheus();
  EXPECT_EQ(runs, 2);
}

TEST(ScopedHookTest, DetachStopsTheCallbackAndIsIdempotent) {
  auto registry = std::make_shared<Registry>();
  int runs = 0;
  ScopedHook hook;
  EXPECT_FALSE(hook.attached());
  hook.Attach(registry, [&runs] { ++runs; });
  EXPECT_TRUE(hook.attached());
  registry->RenderPrometheus();
  EXPECT_EQ(runs, 1);
  hook.Detach();
  EXPECT_FALSE(hook.attached());
  hook.Detach();  // idempotent
  registry->RenderPrometheus();
  EXPECT_EQ(runs, 1);
  // Re-attach after detach is allowed.
  hook.Attach(registry, [&runs] { runs += 10; });
  registry->RenderPrometheus();
  EXPECT_EQ(runs, 11);
}

TEST(ScopedHookTest, DetachQuiescesConcurrentRenders) {
  // Renders race Detach from another thread; after Detach returns, the
  // callback's captured state is torn down. TSan (and the counter check)
  // verifies no invocation ever touches freed state.
  auto registry = std::make_shared<Registry>();
  registry->GetCounter("grafics_test_total", "help")->Add(1);
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load()) registry->RenderPrometheus();
  });
  for (int round = 0; round < 50; ++round) {
    auto live = std::make_unique<std::atomic<int>>(0);
    ScopedHook hook;
    hook.Attach(registry, [&counter = *live] { counter.fetch_add(1); });
    registry->RenderPrometheus();
    hook.Detach();
    live.reset();  // would be a use-after-free if a hook were in flight
  }
  stop.store(true);
  scraper.join();
}

TEST(ObsConcurrencyTest, ParallelUpdatesNeverLoseIncrements) {
  // The TSan target: many threads hammer one counter, one gauge, and one
  // histogram through the relaxed-atomic hot path while a scraper renders.
  Registry registry;
  Counter* counter = registry.GetCounter("grafics_test_total", "help");
  Gauge* gauge = registry.GetGauge("grafics_test_depth", "help");
  Histogram* histogram =
      registry.GetHistogram("grafics_test_us", "help", {8, 64, 512});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load()) registry.RenderPrometheus();
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add();
        gauge->Add(1);
        histogram->Observe(static_cast<std::uint64_t>((t * 31 + i) % 1000));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  stop.store(true);
  scraper.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  EXPECT_EQ(gauge->value(), kThreads * kPerThread);
  EXPECT_EQ(histogram->count(), kThreads * kPerThread);
  std::uint64_t buckets = 0;
  for (std::size_t i = 0; i <= histogram->bounds().size(); ++i) {
    buckets += histogram->bucket(i);
  }
  EXPECT_EQ(buckets, histogram->count());
}

TEST(TraceTest, BreakdownRendersStampsRelativeAndNotesAbsolute) {
  Trace trace;
  trace.Stamp("frame_decoded");
  trace.Note("predict", 1234);
  trace.Stamp("reply_flushed");
  const std::string breakdown = trace.Breakdown();
  // Stamps render "stage=+Nus" (offset from start), notes "stage=Nus".
  EXPECT_NE(breakdown.find("frame_decoded=+"), std::string::npos);
  EXPECT_NE(breakdown.find(" predict=1234us "), std::string::npos);
  EXPECT_NE(breakdown.find("reply_flushed=+"), std::string::npos);
  EXPECT_GE(trace.ElapsedUs(), 0u);
}

}  // namespace
}  // namespace grafics::obs
