#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"

namespace grafics::nn {
namespace {

/// Central-difference gradient check of a scalar loss with respect to every
/// entry of `param`, against the analytic gradient accumulated in
/// `param->grad` by one forward+backward pass through `eval`.
template <typename EvalFn>
void CheckParameterGradient(Parameter& param, EvalFn&& eval,
                            double tolerance = 1e-5) {
  param.ZeroGrad();
  eval(/*accumulate=*/true);
  const Matrix analytic = param.grad;
  const double epsilon = 1e-6;
  for (std::size_t r = 0; r < param.value.rows(); ++r) {
    for (std::size_t c = 0; c < param.value.cols(); ++c) {
      const double saved = param.value(r, c);
      param.value(r, c) = saved + epsilon;
      const double up = eval(false);
      param.value(r, c) = saved - epsilon;
      const double down = eval(false);
      param.value(r, c) = saved;
      const double numeric = (up - down) / (2.0 * epsilon);
      EXPECT_NEAR(analytic(r, c), numeric, tolerance)
          << "param entry (" << r << "," << c << ")";
    }
  }
}

TEST(DenseTest, ForwardComputesAffine) {
  Rng rng(1);
  Dense dense(2, 2, rng);
  // Overwrite weights for a deterministic check.
  Parameter* w = dense.Parameters()[0];
  Parameter* b = dense.Parameters()[1];
  w->value(0, 0) = 1.0;
  w->value(0, 1) = 2.0;
  w->value(1, 0) = 3.0;
  w->value(1, 1) = 4.0;
  b->value(0, 0) = 0.5;
  b->value(0, 1) = -0.5;
  Matrix x(1, 2);
  x(0, 0) = 1.0;
  x(0, 1) = 1.0;
  const Matrix y = dense.Forward(x, false);
  EXPECT_DOUBLE_EQ(y(0, 0), 4.5);
  EXPECT_DOUBLE_EQ(y(0, 1), 5.5);
}

TEST(DenseTest, GradientCheckAgainstMse) {
  Rng rng(2);
  Dense dense(3, 2, rng);
  Matrix x = Matrix::RandomNormal(4, 3, rng, 1.0);
  Matrix target = Matrix::RandomNormal(4, 2, rng, 1.0);
  Parameter* w = dense.Parameters()[0];
  CheckParameterGradient(*w, [&](bool accumulate) {
    const Matrix pred = dense.Forward(x, accumulate);
    const LossValue loss = MseLoss(pred, target);
    if (accumulate) dense.Backward(loss.gradient);
    return loss.value;
  });
}

TEST(DenseTest, InputGradientCheck) {
  Rng rng(3);
  Dense dense(3, 2, rng);
  Matrix x = Matrix::RandomNormal(2, 3, rng, 1.0);
  Matrix target = Matrix::RandomNormal(2, 2, rng, 1.0);
  // Analytic input gradient.
  const Matrix pred = dense.Forward(x, true);
  const LossValue loss = MseLoss(pred, target);
  const Matrix grad_x = dense.Backward(loss.gradient);
  // Numeric input gradient.
  const double epsilon = 1e-6;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      Matrix xp = x;
      xp(r, c) += epsilon;
      Matrix xm = x;
      xm(r, c) -= epsilon;
      const double up = MseLoss(dense.Forward(xp, false), target).value;
      const double down = MseLoss(dense.Forward(xm, false), target).value;
      EXPECT_NEAR(grad_x(r, c), (up - down) / (2.0 * epsilon), 1e-5);
    }
  }
}

TEST(ActivationTest, ReluForwardBackward) {
  ReLU relu;
  Matrix x(1, 3);
  x(0, 0) = -1.0;
  x(0, 1) = 0.0;
  x(0, 2) = 2.0;
  const Matrix y = relu.Forward(x, true);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 2), 2.0);
  Matrix g(1, 3, 1.0);
  const Matrix gx = relu.Backward(g);
  EXPECT_DOUBLE_EQ(gx(0, 0), 0.0);  // blocked where input <= 0
  EXPECT_DOUBLE_EQ(gx(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(gx(0, 2), 1.0);
}

TEST(ActivationTest, SigmoidRangeAndDerivative) {
  Sigmoid sigmoid;
  Matrix x(1, 2);
  x(0, 0) = 0.0;
  x(0, 1) = 100.0;
  const Matrix y = sigmoid.Forward(x, true);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.5);
  EXPECT_NEAR(y(0, 1), 1.0, 1e-12);
  Matrix g(1, 2, 1.0);
  const Matrix gx = sigmoid.Backward(g);
  EXPECT_DOUBLE_EQ(gx(0, 0), 0.25);          // sigma'(0) = 0.25
  EXPECT_NEAR(gx(0, 1), 0.0, 1e-12);         // saturated
}

TEST(ActivationTest, TanhDerivative) {
  Tanh tanh_layer;
  Matrix x(1, 1);
  x(0, 0) = 0.5;
  tanh_layer.Forward(x, true);
  Matrix g(1, 1, 1.0);
  const Matrix gx = tanh_layer.Backward(g);
  const double y = std::tanh(0.5);
  EXPECT_NEAR(gx(0, 0), 1.0 - y * y, 1e-12);
}

TEST(DropoutTest, InferenceIsIdentity) {
  Dropout dropout(0.5, 1);
  Rng rng(5);
  const Matrix x = Matrix::RandomNormal(3, 4, rng, 1.0);
  EXPECT_EQ(dropout.Forward(x, false), x);
}

TEST(DropoutTest, TrainingZeroesAboutPFraction) {
  Dropout dropout(0.3, 7);
  Matrix x(100, 100, 1.0);
  const Matrix y = dropout.Forward(x, true);
  std::size_t zeros = 0;
  for (std::size_t r = 0; r < y.rows(); ++r) {
    for (double v : y.Row(r)) {
      if (v == 0.0) ++zeros;
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
}

TEST(DropoutTest, SurvivorsScaledByKeepInverse) {
  Dropout dropout(0.2, 9);
  Matrix x(10, 10, 2.0);
  const Matrix y = dropout.Forward(x, true);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    for (double v : y.Row(r)) {
      EXPECT_TRUE(v == 0.0 || std::abs(v - 2.5) < 1e-12);
    }
  }
}

TEST(DropoutTest, InvalidProbabilityThrows) {
  EXPECT_THROW(Dropout(1.0, 1), Error);
  EXPECT_THROW(Dropout(-0.1, 1), Error);
}

TEST(Conv1DTest, IdentityKernelPassesThrough) {
  Rng rng(11);
  Conv1D conv(1, 1, 3, 5, rng);
  Parameter* kernel = conv.Parameters()[0];
  Parameter* bias = conv.Parameters()[1];
  kernel->value.Fill(0.0);
  kernel->value(0, 1) = 1.0;  // center tap
  bias->value.Fill(0.0);
  Matrix x(1, 5);
  for (int i = 0; i < 5; ++i) x(0, i) = i + 1.0;
  EXPECT_EQ(conv.Forward(x, false), x);
}

TEST(Conv1DTest, ZeroPaddingAtEdges) {
  Rng rng(13);
  Conv1D conv(1, 1, 3, 4, rng);
  Parameter* kernel = conv.Parameters()[0];
  Parameter* bias = conv.Parameters()[1];
  kernel->value.Fill(1.0);  // moving sum of window 3
  bias->value.Fill(0.0);
  Matrix x(1, 4, 1.0);
  const Matrix y = conv.Forward(x, false);
  EXPECT_DOUBLE_EQ(y(0, 0), 2.0);  // edge: only 2 taps inside
  EXPECT_DOUBLE_EQ(y(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(y(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(y(0, 3), 2.0);
}

TEST(Conv1DTest, EvenKernelThrows) {
  Rng rng(17);
  EXPECT_THROW(Conv1D(1, 1, 4, 8, rng), Error);
}

TEST(Conv1DTest, KernelGradientCheck) {
  Rng rng(19);
  Conv1D conv(2, 3, 3, 4, rng);
  Matrix x = Matrix::RandomNormal(2, 8, rng, 1.0);      // 2 channels x len 4
  Matrix target = Matrix::RandomNormal(2, 12, rng, 1.0);  // 3 channels x len 4
  Parameter* kernel = conv.Parameters()[0];
  CheckParameterGradient(*kernel, [&](bool accumulate) {
    const Matrix pred = conv.Forward(x, accumulate);
    const LossValue loss = MseLoss(pred, target);
    if (accumulate) conv.Backward(loss.gradient);
    return loss.value;
  });
}

TEST(LossTest, MseKnownValue) {
  Matrix pred(1, 2);
  pred(0, 0) = 1.0;
  pred(0, 1) = 2.0;
  Matrix target(1, 2);
  target(0, 0) = 0.0;
  target(0, 1) = 4.0;
  const LossValue loss = MseLoss(pred, target);
  EXPECT_DOUBLE_EQ(loss.value, (1.0 + 4.0) / 2.0);
}

TEST(LossTest, SoftmaxRowsSumToOne) {
  Rng rng(23);
  const Matrix logits = Matrix::RandomNormal(5, 4, rng, 3.0);
  const Matrix p = Softmax(logits);
  for (std::size_t r = 0; r < p.rows(); ++r) {
    double sum = 0.0;
    for (double v : p.Row(r)) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(LossTest, SoftmaxNumericallyStableForHugeLogits) {
  Matrix logits(1, 2);
  logits(0, 0) = 10000.0;
  logits(0, 1) = 9999.0;
  const Matrix p = Softmax(logits);
  EXPECT_FALSE(std::isnan(p(0, 0)));
  EXPECT_GT(p(0, 0), p(0, 1));
}

TEST(LossTest, CrossEntropyPerfectPredictionNearZero) {
  Matrix logits(1, 3);
  logits(0, 1) = 100.0;
  const LossValue loss = SoftmaxCrossEntropyLoss(logits, {1});
  EXPECT_NEAR(loss.value, 0.0, 1e-9);
}

TEST(LossTest, CrossEntropyLabelOutOfRangeThrows) {
  EXPECT_THROW(SoftmaxCrossEntropyLoss(Matrix(1, 3), {3}), Error);
}

TEST(LossTest, CrossEntropyGradientSumsToZeroPerRow) {
  Rng rng(29);
  const Matrix logits = Matrix::RandomNormal(4, 5, rng, 1.0);
  const LossValue loss = SoftmaxCrossEntropyLoss(logits, {0, 1, 2, 3});
  for (std::size_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (double v : loss.gradient.Row(r)) sum += v;
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

TEST(OptimizerTest, SgdStepsDownhill) {
  Parameter p(Matrix(1, 1, 5.0));
  p.grad(0, 0) = 2.0;
  Sgd sgd(0.1);
  sgd.Step({&p});
  EXPECT_DOUBLE_EQ(p.value(0, 0), 4.8);
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 0.0);  // zeroed after step
}

TEST(OptimizerTest, SgdMomentumAccumulates) {
  Parameter p(Matrix(1, 1, 0.0));
  Sgd sgd(0.1, 0.9);
  p.grad(0, 0) = 1.0;
  sgd.Step({&p});
  const double after_one = p.value(0, 0);
  p.grad(0, 0) = 1.0;
  sgd.Step({&p});
  // Second step moves further than the first (velocity builds up).
  EXPECT_LT(p.value(0, 0) - after_one, after_one);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // Minimize (x - 3)^2 via gradient 2(x-3).
  Parameter p(Matrix(1, 1, 0.0));
  Adam adam(0.1);
  for (int i = 0; i < 500; ++i) {
    p.grad(0, 0) = 2.0 * (p.value(0, 0) - 3.0);
    adam.Step({&p});
  }
  EXPECT_NEAR(p.value(0, 0), 3.0, 1e-3);
}

TEST(SequentialTest, LearnsXor) {
  Rng rng(31);
  Sequential model;
  model.Emplace<Dense>(2, 8, rng);
  model.Emplace<Tanh>();
  model.Emplace<Dense>(8, 2, rng);
  Matrix x(4, 2);
  x(1, 1) = 1.0;
  x(2, 0) = 1.0;
  x(3, 0) = 1.0;
  x(3, 1) = 1.0;
  const std::vector<std::size_t> labels = {0, 1, 1, 0};
  Adam adam(0.05);
  FitConfig fit;
  fit.epochs = 300;
  fit.batch_size = 4;
  FitClassifier(model, adam, x, labels, fit);
  EXPECT_EQ(PredictClasses(model, x), labels);
}

TEST(SequentialTest, RegressionLossDecreases) {
  Rng rng(37);
  Sequential model;
  model.Emplace<Dense>(4, 8, rng);
  model.Emplace<ReLU>();
  model.Emplace<Dense>(8, 4, rng);
  const Matrix x = Matrix::RandomNormal(32, 4, rng, 1.0);
  Adam adam(1e-2);
  std::vector<double> losses;
  FitConfig fit;
  fit.epochs = 30;
  fit.on_epoch = [&](std::size_t, double loss) { losses.push_back(loss); };
  FitRegression(model, adam, x, x, fit);
  ASSERT_EQ(losses.size(), 30u);
  EXPECT_LT(losses.back(), losses.front() * 0.5);
}

TEST(SequentialTest, FitValidation) {
  Rng rng(41);
  Sequential model;
  model.Emplace<Dense>(2, 2, rng);
  Adam adam(1e-3);
  FitConfig fit;
  EXPECT_THROW(FitRegression(model, adam, Matrix(0, 2), Matrix(0, 2), fit),
               Error);
  EXPECT_THROW(
      FitClassifier(model, adam, Matrix(2, 2), {0, 1, 0}, fit),
      Error);
}

}  // namespace
}  // namespace grafics::nn
