#include "embed/random_walk.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/matrix.h"
#include "graph/weight_function.h"

namespace grafics::embed {
namespace {

rf::SignalRecord MakeRecord(std::initializer_list<std::pair<int, double>> obs) {
  rf::SignalRecord r;
  for (const auto& [mac, rssi] : obs) {
    r.Add(rf::MacAddress(static_cast<std::uint64_t>(mac)), rssi);
  }
  return r;
}

graph::BipartiteGraph TwoCommunityGraph() {
  std::vector<rf::SignalRecord> records;
  for (int r = 0; r < 4; ++r) {
    rf::SignalRecord rec;
    for (int m = 0; m < 4; ++m) {
      rec.Add(rf::MacAddress(static_cast<std::uint64_t>(100 + m)), -55.0);
    }
    records.push_back(std::move(rec));
  }
  for (int r = 0; r < 4; ++r) {
    rf::SignalRecord rec;
    for (int m = 0; m < 4; ++m) {
      rec.Add(rf::MacAddress(static_cast<std::uint64_t>(200 + m)), -55.0);
    }
    records.push_back(std::move(rec));
  }
  return graph::BipartiteGraph::FromRecords(records,
                                            graph::OffsetWeight(120.0));
}

TEST(RandomWalkTest, EmptyGraphThrows) {
  graph::BipartiteGraph g;
  EXPECT_THROW(TrainRandomWalkEmbeddings(g, RandomWalkConfig{}), Error);
}

TEST(RandomWalkTest, BadConfigThrows) {
  const auto g = TwoCommunityGraph();
  RandomWalkConfig config;
  config.dim = 0;
  EXPECT_THROW(TrainRandomWalkEmbeddings(g, config), Error);
  config.dim = 8;
  config.walk_length = 1;
  EXPECT_THROW(TrainRandomWalkEmbeddings(g, config), Error);
}

TEST(RandomWalkTest, DeterministicInSeed) {
  const auto g = TwoCommunityGraph();
  RandomWalkConfig config;
  config.walks_per_node = 3;
  config.seed = 7;
  const auto a = TrainRandomWalkEmbeddings(g, config);
  const auto b = TrainRandomWalkEmbeddings(g, config);
  EXPECT_EQ(a.ego_matrix(), b.ego_matrix());
}

TEST(RandomWalkTest, EmbeddingsFinite) {
  const auto g = TwoCommunityGraph();
  RandomWalkConfig config;
  config.walks_per_node = 5;
  const auto store = TrainRandomWalkEmbeddings(g, config);
  for (graph::NodeId node = 0; node < g.NumNodes(); ++node) {
    for (const double v : store.Ego(node)) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(RandomWalkTest, SeparatesCommunities) {
  const auto g = TwoCommunityGraph();
  RandomWalkConfig config;
  config.walks_per_node = 30;
  config.seed = 11;
  const auto store = TrainRandomWalkEmbeddings(g, config);
  double intra = 0.0;
  double inter = 0.0;
  int n_intra = 0;
  int n_inter = 0;
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = a + 1; b < 8; ++b) {
      const double d = std::sqrt(SquaredL2Distance(
          store.Ego(g.RecordNode(a)), store.Ego(g.RecordNode(b))));
      if ((a < 4) == (b < 4)) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  EXPECT_LT(intra / n_intra * 1.5, inter / n_inter);
}

TEST(RandomWalkTest, IsolatedNodesKeepInitAndDoNotCrash) {
  std::vector<rf::SignalRecord> records;
  records.push_back(MakeRecord({{1, -50.0}, {2, -55.0}}));
  records.push_back(rf::SignalRecord());  // isolated record node
  const auto g = graph::BipartiteGraph::FromRecords(
      records, graph::OffsetWeight(120.0));
  RandomWalkConfig config;
  config.walks_per_node = 2;
  const auto store = TrainRandomWalkEmbeddings(g, config);
  EXPECT_EQ(store.num_nodes(), g.NumNodes());
}

}  // namespace
}  // namespace grafics::embed
