// Fuzz harness for the wire-protocol payload decoder — the one parser in
// the daemon that consumes fully untrusted bytes (anything a TCP peer
// sends lands in DecodePayload after the length prefix).
//
// Two build modes from this one file:
//
//  * libFuzzer (Clang with -fsanitize=fuzzer): LLVMFuzzerTestOneInput feeds
//    coverage-guided mutations. The CI fuzz leg runs it for a short budget
//    per push with ASan, seeded from the corpus WriteSeedCorpus generates.
//  * standalone (-DGRAFICS_FUZZ_STANDALONE, any compiler): main() replays
//    the generated seed corpus plus deterministic truncations and byte
//    flips of every seed — a fast smoke test registered as a plain ctest,
//    so the harness itself never rots on toolchains without fuzzer support.
//    `protocol_fuzz_smoke --write-seeds DIR` emits the seed corpus for the
//    CI leg to hand to libFuzzer.
//
// The properties checked for every input:
//  1. DecodePayload either returns a Message or throws grafics::Error —
//     any other exception, signal, or sanitizer report is a bug.
//  2. Round-trip stability: a successfully decoded message re-encodes at
//     the negotiated version and decodes back to an equal Message. This
//     catches asymmetric encode/decode drift that byte-frozen tests for
//     hand-picked values would miss.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"
#include "serve/protocol.h"

namespace {

using grafics::serve::DecodePayload;
using grafics::serve::EncodePayload;
using grafics::serve::Message;

/// One fuzz probe; aborts (for the fuzzer/sanitizer to report) on any
/// property violation.
void FuzzDecodeOne(const std::string& payload) {
  Message decoded;
  std::uint32_t version = 0;
  try {
    decoded = DecodePayload(payload, &version);
  } catch (const grafics::Error&) {
    return;  // malformed input rejected with the documented exception — fine
  }
  // Properties below hold for every successfully decoded payload. A failure
  // here is a real decoder/encoder bug, so crash loudly for the harness.
  std::string reencoded;
  try {
    reencoded = EncodePayload(decoded, version);
  } catch (const grafics::Error& e) {
    std::fprintf(stderr,
                 "protocol_fuzz: decoded v%u message rejects re-encoding: "
                 "%s\n",
                 version, e.what());
    std::abort();
  }
  try {
    std::uint32_t version2 = 0;
    const Message redecoded = DecodePayload(reencoded, &version2);
    if (version2 != version || !(redecoded == decoded)) {
      std::fprintf(stderr,
                   "protocol_fuzz: v%u round-trip changed the message "
                   "(re-negotiated v%u)\n",
                   version, version2);
      std::abort();
    }
  } catch (const grafics::Error& e) {
    std::fprintf(stderr,
                 "protocol_fuzz: re-encoded v%u message fails to decode: "
                 "%s\n",
                 version, e.what());
    std::abort();
  }
}

/// Valid frames covering every message type and dialect: the corpus the
/// coverage-guided fuzzer mutates from, and the smoke test's base inputs.
std::vector<std::string> SeedCorpus() {
  using namespace grafics::serve;
  grafics::rf::SignalRecord record;
  record.Add(grafics::rf::MacAddress(3), -52.5);
  record.Add(grafics::rf::MacAddress(17), -80.25);
  grafics::rf::SignalRecord labeled = record;
  labeled.set_floor(2);

  std::vector<Message> messages;
  messages.push_back(PredictRequest{"", {record}});
  messages.push_back(PredictRequest{"mall", {record, labeled}});
  messages.push_back(PredictResponse{
      {{PredictStatus::kOk, 3, ""},
       {PredictStatus::kDiscarded, 0, ""},
       {PredictStatus::kError, 0, "unknown model 'x'"}}});
  messages.push_back(Ping{"campus"});
  messages.push_back(Pong{2, true, 7, ""});
  messages.push_back(ReloadRequest{"mall", 0});
  messages.push_back(ReloadRequest{"mall", 12});
  messages.push_back(ReloadResponse{true, 8, "reloaded"});
  messages.push_back(ListModelsRequest{});
  {
    ListModelsResponse response;
    response.default_model = "campus";
    response.models.push_back({"campus", 4, true});
    response.models.push_back({"mall", 1, false});
    messages.push_back(response);
  }
  messages.push_back(StatsRequest{"campus"});
  {
    StatsResponse response;
    response.connections_accepted = 11;
    response.transport.connections_live = 3;
    response.transport.frames_in = 200;
    response.transport.frames_out = 199;
    response.transport.bytes_in = 1 << 16;
    response.transport.bytes_out = 1 << 15;
    response.transport.requests_rejected_busy = 2;
    response.transport.event_workers = 2;
    response.store.enabled = true;
    response.store.base_count = 1;
    response.store.delta_count = 3;
    response.store.journal_bytes_reclaimed = 512;
    ModelStats stats;
    stats.name = "campus";
    stats.generation = 4;
    stats.requests = 100;
    stats.batches = 9;
    stats.max_batch = 32;
    stats.queue_depth = 1;
    stats.pending_ingest = 5;
    stats.shared_bytes = 1 << 20;
    stats.owned_bytes = 4096;
    stats.last_publish_source = PublishSource::kIngest;
    response.models.push_back(stats);
    messages.push_back(response);
  }
  messages.push_back(SubmitRecordsRequest{"mall", {labeled}});
  {
    SubmitRecordsResponse response;
    response.results.push_back({SubmitStatus::kAccepted, ""});
    response.results.push_back({SubmitStatus::kRejected, "backpressure"});
    messages.push_back(response);
  }
  messages.push_back(IngestStatsRequest{""});
  {
    IngestStatsResponse response;
    response.enabled = true;
    IngestModelStats stats;
    stats.name = "mall";
    stats.accepted = 40;
    stats.folded = 32;
    stats.publishes = 2;
    stats.journal_bytes = 1234;
    response.models.push_back(stats);
    messages.push_back(response);
  }
  messages.push_back(CheckpointRequest{"mall"});
  messages.push_back(CheckpointResponse{true, 5, true, 2048, "delta"});
  messages.push_back(CompactRequest{""});
  messages.push_back(CompactResponse{true, 6, 900, ""});
  messages.push_back(ListArtifactsRequest{"mall"});
  {
    ListArtifactsResponse response;
    response.enabled = true;
    response.artifacts.push_back({1, false, "mall.1.base", 4096});
    response.artifacts.push_back({2, true, "mall.2.delta", 128});
    messages.push_back(response);
  }

  std::vector<std::string> seeds;
  for (std::uint32_t version = kMinProtocolVersion;
       version <= kProtocolVersion; ++version) {
    for (const Message& message : messages) {
      try {
        seeds.push_back(EncodePayload(message, version));
      } catch (const grafics::Error&) {
        // Not expressible in this dialect (v1 has no admin surface, pins
        // need v6, ...) — the per-version encodability matrix is protocol
        // _test_'s concern, not the fuzzer's.
      }
    }
  }
  return seeds;
}

}  // namespace

#if defined(GRAFICS_FUZZ_STANDALONE)

namespace {

int WriteSeedCorpus(const std::string& dir) {
  const std::vector<std::string> seeds = SeedCorpus();
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const std::string path = dir + "/seed-" + std::to_string(i) + ".bin";
    std::FILE* out = std::fopen(path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "protocol_fuzz: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fwrite(seeds[i].data(), 1, seeds[i].size(), out);
    std::fclose(out);
  }
  std::printf("protocol_fuzz: wrote %zu seeds to %s\n", seeds.size(),
              dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--write-seeds") == 0) {
    return WriteSeedCorpus(argv[2]);
  }
  const std::vector<std::string> seeds = SeedCorpus();
  std::size_t probes = 0;
  for (const std::string& seed : seeds) {
    FuzzDecodeOne(seed);
    ++probes;
    // Every truncation: a peer may legally stop sending mid-body, and the
    // decoder must reject (not overread) all prefixes.
    for (std::size_t len = 0; len < seed.size(); ++len) {
      FuzzDecodeOne(seed.substr(0, len));
      ++probes;
    }
    // Deterministic corruption sweep: every byte position, three patterns.
    // Coverage-guided mutation needs libFuzzer; this bounded sweep still
    // exercises the header/type/length validation on every field boundary.
    for (std::size_t pos = 0; pos < seed.size(); ++pos) {
      for (const unsigned char pattern :
           {static_cast<unsigned char>(0xFF), static_cast<unsigned char>(0x80),
            static_cast<unsigned char>(0x01)}) {
        std::string mutated = seed;
        mutated[pos] = static_cast<char>(mutated[pos] ^ pattern);
        FuzzDecodeOne(mutated);
        ++probes;
      }
    }
  }
  std::printf("protocol_fuzz (standalone): %zu seeds, %zu probes, all "
              "properties held\n",
              seeds.size(), probes);
  return 0;
}

#else  // libFuzzer build

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzDecodeOne(std::string(reinterpret_cast<const char*>(data), size));
  return 0;
}

#endif
