#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace grafics {
namespace {

TEST(StatsTest, SummarizeEmpty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(StatsTest, SummarizeSingle) {
  const std::vector<double> v = {4.0};
  const Summary s = Summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(StatsTest, SummarizeKnownValues) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = Summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(StatsTest, QuantileEndpointsAndMedian) {
  std::vector<double> v = {3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
}

TEST(StatsTest, QuantileValidation) {
  EXPECT_THROW(Quantile({}, 0.5), Error);
  EXPECT_THROW(Quantile({1.0}, 1.5), Error);
}

TEST(StatsTest, EmpiricalCdfMonotoneAndComplete) {
  const auto cdf = EmpiricalCdf({3.0, 1.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);  // distinct values 1, 2, 3
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative_probability, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].cumulative_probability, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative_probability, 1.0);
}

TEST(StatsTest, EmpiricalCdfEmpty) {
  EXPECT_TRUE(EmpiricalCdf({}).empty());
}

TEST(StatsTest, FractionAtOrBelow) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(FractionAtOrBelow(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(FractionAtOrBelow(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(FractionAtOrBelow(v, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(FractionAtOrBelow({}, 1.0), 0.0);
}

TEST(StatsTest, SilhouetteWellSeparatedNearOne) {
  std::vector<std::vector<double>> points;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    points.push_back({0.0 + 0.01 * i, 0.0});
    labels.push_back(0);
    points.push_back({100.0 + 0.01 * i, 0.0});
    labels.push_back(1);
  }
  EXPECT_GT(MeanSilhouette(points, labels), 0.95);
}

TEST(StatsTest, SilhouetteMixedClustersNearZeroOrNegative) {
  // Interleaved labels on the same line: bad clustering.
  std::vector<std::vector<double>> points;
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    points.push_back({static_cast<double>(i), 0.0});
    labels.push_back(i % 2);
  }
  EXPECT_LT(MeanSilhouette(points, labels), 0.1);
}

TEST(StatsTest, SilhouetteSingleClusterZero) {
  const std::vector<std::vector<double>> points = {{0.0}, {1.0}, {2.0}};
  const std::vector<int> labels = {1, 1, 1};
  EXPECT_DOUBLE_EQ(MeanSilhouette(points, labels), 0.0);
}

TEST(StatsTest, SilhouetteSizeMismatchThrows) {
  EXPECT_THROW(MeanSilhouette({{0.0}}, {1, 2}), Error);
}

}  // namespace
}  // namespace grafics
