#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace grafics {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(99);
  const auto first = a();
  a.Reseed(99);
  EXPECT_EQ(a(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, NextIndexCoversRangeUniformly) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.NextIndex(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.1, 0.01);
  }
}

TEST(RngTest, NextIndexOneAlwaysZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextIndex(1), 0u);
}

TEST(RngTest, NextIndexZeroThrows) {
  Rng rng(19);
  EXPECT_THROW(rng.NextIndex(0), Error);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntEmptyRangeThrows) {
  Rng rng(23);
  EXPECT_THROW(rng.UniformInt(3, 2), Error);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(29);
  constexpr int kN = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(43);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementTooManyThrows) {
  Rng rng(47);
  EXPECT_THROW(rng.SampleWithoutReplacement(5, 6), Error);
}

TEST(RngTest, SplitMix64Advances) {
  std::uint64_t s = 0;
  const auto a = SplitMix64(s);
  const auto b = SplitMix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace grafics
