// Tests for the copy-on-write snapshot model: Grafics::Clone is an O(1)
// structural fork whose graph chunks, embedding rows, and trained components
// are shared with the parent until written; folding on a fork copies only
// the touched chunks; and the incremental negative-sampler extension keeps
// the deg^{3/4} distribution exact. See docs/architecture.md.
#include <gtest/gtest.h>

#include <sstream>
#include <utility>
#include <vector>

#include "core/grafics.h"
#include "embed/negative_sampler.h"
#include "synth/presets.h"

namespace grafics::core {
namespace {

GraficsConfig FastConfig() {
  GraficsConfig config;
  config.trainer.samples_per_edge = 10;
  config.online_refine_iterations = 60;
  return config;
}

struct Fixture {
  Fixture(int records_per_floor = 150, std::uint64_t seed = 4711) {
    auto preset = synth::CampusBuildingConfig(seed, records_per_floor);
    sim = preset.MakeSimulator();
    rf::Dataset dataset = sim->GenerateDataset();
    Rng rng(13);
    dataset.KeepLabelsPerFloor(4, rng);
    system.Train(dataset.records());
  }

  std::vector<rf::SignalRecord> FreshBatch(std::size_t count) {
    std::vector<rf::SignalRecord> batch;
    for (std::size_t i = 0; i < count; ++i) {
      batch.push_back(
          sim->MeasureAt({5.0 + static_cast<double>(i), 7.0, 1.2}, 0));
    }
    return batch;
  }

  rf::SignalRecord Probe(double x) { return sim->MeasureAt({x, 20.0, 5.2}, 1); }

  std::optional<synth::BuildingSimulator> sim;
  Grafics system{FastConfig()};
};

/// Nodes of `a` whose adjacency storage is byte-for-byte the same heap
/// memory as in `b`.
std::size_t SharedAdjacencyNodes(const Grafics& a, const Grafics& b) {
  std::size_t shared = 0;
  for (graph::NodeId n = 0; n < a.graph().NumNodes(); ++n) {
    if (n < b.graph().NumNodes() &&
        a.graph().NeighborsOf(n).data() == b.graph().NeighborsOf(n).data()) {
      ++shared;
    }
  }
  return shared;
}

std::size_t SharedEgoRows(const Grafics& a, const Grafics& b) {
  std::size_t shared = 0;
  const auto& sa = a.embedding_store();
  const auto& sb = b.embedding_store();
  for (graph::NodeId n = 0; n < sa.num_nodes(); ++n) {
    if (n < sb.num_nodes() && sa.Ego(n).data() == sb.Ego(n).data()) ++shared;
  }
  return shared;
}

TEST(SnapshotSharingTest, ForkSharesEveryChunkUntilWritten) {
  Fixture f;
  const Grafics fork = f.system.Clone();

  // Graph adjacency and embedding tables: every node aliases the parent's
  // storage — the fork copied pointers, not chunks.
  EXPECT_EQ(SharedAdjacencyNodes(f.system, fork),
            f.system.graph().NumNodes());
  EXPECT_EQ(SharedEgoRows(f.system, fork),
            f.system.embedding_store().num_nodes());
  // Immutable trained components are shared by pointer: identical objects.
  EXPECT_EQ(&f.system.clustering(), &fork.clustering());
  EXPECT_EQ(&f.system.classifier(), &fork.classifier());
  EXPECT_EQ(&f.system.negative_sampler(), &fork.negative_sampler());
}

TEST(SnapshotSharingTest, FoldOnForkCopiesOnlyTouchedChunks) {
  Fixture f;
  const std::size_t base_nodes = f.system.graph().NumNodes();
  ASSERT_GT(base_nodes, 512u) << "fixture too small to span several chunks";

  const auto parent_before = f.system.PredictBatch(
      {f.Probe(22.0), f.Probe(28.0), f.Probe(34.0)});

  Grafics fork = f.system.Clone();
  const std::vector<rf::SignalRecord> batch = f.FreshBatch(8);
  ASSERT_EQ(fork.Update(batch), batch.size());

  // The fold extended the fork without disturbing the parent's state...
  EXPECT_EQ(f.system.graph().NumNodes(), base_nodes);
  const auto parent_after = f.system.PredictBatch(
      {f.Probe(22.0), f.Probe(28.0), f.Probe(34.0)});
  EXPECT_EQ(parent_before, parent_after);

  // ...and copied only the chunks it touched: the batch reaches a handful
  // of MAC adjacency chunks and the tail rows, so the bulk of both tables
  // is still the same heap memory in parent and fork.
  const std::size_t shared_adj = SharedAdjacencyNodes(f.system, fork);
  EXPECT_LT(shared_adj, base_nodes);  // touched MAC chunks were copied
  EXPECT_GT(shared_adj, base_nodes / 2);
  // Base embedding rows are frozen during a fold (Sec. V-A): only the tail
  // chunk gaining new rows was copied, every earlier chunk is still shared.
  const std::size_t shared_ego = SharedEgoRows(f.system, fork);
  EXPECT_GT(shared_ego, base_nodes / 2);
  EXPECT_EQ(f.system.embedding_store().Ego(0).data(),
            fork.embedding_store().Ego(0).data());
  // Clustering and centroids are untouched by Update: still shared.
  EXPECT_EQ(&f.system.clustering(), &fork.clustering());
  EXPECT_EQ(&f.system.classifier(), &fork.classifier());
}

TEST(SnapshotSharingTest, MemoryAccountingObservesSharing) {
  Fixture f;
  const CowBytes alone = f.system.MemoryBytes();
  EXPECT_EQ(alone.shared_bytes, 0u);
  EXPECT_GT(alone.owned_bytes, 0u);
  {
    const Grafics fork = f.system.Clone();
    const CowBytes shared = f.system.MemoryBytes();
    // With a live fork, (nearly) everything is shared: publishing a fork
    // cannot double resident memory.
    EXPECT_GT(shared.shared_bytes, 9 * shared.owned_bytes);
    const CowBytes fork_bytes = fork.MemoryBytes();
    EXPECT_GT(fork_bytes.shared_bytes, 9 * fork_bytes.owned_bytes);
  }
  // Fork gone: sole ownership again.
  const CowBytes after = f.system.MemoryBytes();
  EXPECT_EQ(after.shared_bytes, 0u);
  EXPECT_EQ(after.owned_bytes, alone.owned_bytes);
}

TEST(SnapshotSharingTest, UntrainedSystemsFork) {
  Grafics system(FastConfig());
  const Grafics fork = system.Clone();
  EXPECT_FALSE(fork.is_trained());
}

TEST(SnapshotSharingTest, KnnHeadForksAndPredictsIdentically) {
  GraficsConfig config = FastConfig();
  config.head = InferenceHead::kKnn;
  auto preset = synth::CampusBuildingConfig(4711, 60);
  auto sim = preset.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(13);
  dataset.KeepLabelsPerFloor(4, rng);
  Grafics system(config);
  system.Train(dataset.records());

  const Grafics fork = system.Clone();
  const rf::SignalRecord probe = sim.MeasureAt({18.0, 12.0, 1.2}, 0);
  EXPECT_EQ(system.Predict(probe), fork.Predict(probe));
}

TEST(SnapshotSharingTest, ThousandSequentialForksStayBitIdentical) {
  Fixture f(/*records_per_floor=*/60);
  const rf::SignalRecord probe_a = f.Probe(24.0);
  const rf::SignalRecord probe_b = f.Probe(31.0);
  const auto expected_a = f.system.Predict(probe_a);
  const auto expected_b = f.system.Predict(probe_b);

  Grafics fork = f.system.Clone();
  for (int i = 0; i < 999; ++i) fork = fork.Clone();
  EXPECT_EQ(fork.Predict(probe_a), expected_a);
  EXPECT_EQ(fork.Predict(probe_b), expected_b);
  // A 1000-deep fork chain still aliases the root's storage.
  EXPECT_EQ(SharedAdjacencyNodes(f.system, fork),
            f.system.graph().NumNodes());
}

TEST(SnapshotSharingTest, NegativeSamplerExtensionIsExact) {
  Fixture f(/*records_per_floor=*/60);
  // Several fold-ins: each appends one correction group instead of
  // rebuilding the table.
  for (int round = 0; round < 3; ++round) {
    ASSERT_EQ(f.system.Update(f.FreshBatch(4)), 4u);
  }
  const embed::NegativeSamplerSet& incremental = f.system.negative_sampler();
  EXPECT_EQ(incremental.num_groups(), 4u);

  // The amortized set must induce EXACTLY the deg^{3/4} distribution a
  // from-scratch rebuild would — corrections account for every degree that
  // changed.
  const embed::NegativeSamplerSet rebuilt =
      embed::NegativeSamplerSet::Build(f.system.graph());
  for (graph::NodeId n = 0; n < f.system.graph().NumNodes(); ++n) {
    EXPECT_NEAR(incremental.ProbabilityOf(n), rebuilt.ProbabilityOf(n), 1e-9)
        << "node " << n;
  }
}

TEST(SnapshotSharingTest, NegativeSamplerCompactsAtGroupBudget) {
  Fixture f(/*records_per_floor=*/60);
  for (std::size_t round = 0;
       round < embed::NegativeSamplerSet::kMaxGroups + 4; ++round) {
    ASSERT_EQ(f.system.Update(f.FreshBatch(1)), 1u);
    EXPECT_LE(f.system.negative_sampler().num_groups(),
              embed::NegativeSamplerSet::kMaxGroups);
  }
  // Still exact after compaction cycles.
  const embed::NegativeSamplerSet rebuilt =
      embed::NegativeSamplerSet::Build(f.system.graph());
  for (graph::NodeId n = 0; n < f.system.graph().NumNodes(); ++n) {
    ASSERT_NEAR(f.system.negative_sampler().ProbabilityOf(n),
                rebuilt.ProbabilityOf(n), 1e-9);
  }
}

TEST(SnapshotSharingTest, DeltaCheckpointSerializesOnlyOwnedChunks) {
  Fixture f;
  Grafics fork = f.system.Clone();
  const std::vector<rf::SignalRecord> batch = f.FreshBatch(8);
  ASSERT_EQ(fork.Update(batch), batch.size());
  ASSERT_TRUE(fork.DeltaCompatible(f.system));

  // The on-disk mirror of chunk-level sharing: a K-record fold serializes
  // as O(owned chunks), a small fraction of the full artifact.
  std::ostringstream full;
  fork.SaveModel(full);
  std::ostringstream delta;
  fork.SaveDelta(delta, f.system);
  EXPECT_LT(delta.str().size(), full.str().size() / 4);

  // And re-linking the delta onto a freshly loaded base reproduces the
  // fork bit-exactly, probes answered identically.
  std::ostringstream base_bytes;
  f.system.SaveModel(base_bytes);
  std::istringstream base_in(base_bytes.str());
  Grafics restored = Grafics::LoadModel(base_in);
  std::istringstream delta_in(delta.str());
  restored.ApplyDelta(delta_in);
  const std::vector<rf::SignalRecord> probes = {f.Probe(5.0), f.Probe(15.0),
                                                f.Probe(25.0), f.Probe(35.0)};
  EXPECT_EQ(restored.PredictBatch(probes), fork.PredictBatch(probes));
}

}  // namespace
}  // namespace grafics::core
