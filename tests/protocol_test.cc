// Tests for the serving wire protocol: round-trips for every v2 message
// type, v1 <-> v2 compatibility (v1 frames decode to one-record default-
// model requests; replies encode back to v1), and rejection (grafics::Error,
// never a crash) of truncated, garbage, oversized, bad-name, zero-batch,
// and trailing-byte frames — including over a real socket pair.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/serialize.h"
#include "serve/protocol.h"

namespace grafics::serve {
namespace {

rf::SignalRecord MakeRecord(std::optional<rf::FloorId> floor = std::nullopt) {
  rf::SignalRecord record;
  record.Add(rf::MacAddress(0xAABBCCDDEEFF), -48.5);
  record.Add(rf::MacAddress(0x112233445566), -73.25);
  record.set_floor(floor);
  return record;
}

TEST(SignalRecordWireTest, RoundTripsLabeledUnlabeledAndEmpty) {
  for (const rf::SignalRecord& record :
       {MakeRecord(), MakeRecord(4), MakeRecord(-2), rf::SignalRecord()}) {
    std::stringstream stream;
    WriteSignalRecord(stream, record);
    EXPECT_EQ(ReadSignalRecord(stream), record);
  }
}

TEST(SignalRecordWireTest, RejectsOutOfRangeMacBits) {
  std::stringstream stream;
  WriteU64(stream, 1);                     // one observation
  WriteU64(stream, 0x1FFFFFFFFFFFFFULL);   // 53 bits: not a MAC
  WriteDouble(stream, -50.0);
  WriteOptionalI32(stream, std::nullopt);
  EXPECT_THROW(ReadSignalRecord(stream), Error);
}

TEST(SignalRecordWireTest, RejectsDuplicateMacs) {
  std::stringstream stream;
  WriteU64(stream, 2);
  for (int i = 0; i < 2; ++i) {
    WriteU64(stream, 0xAABBCCDDEEFF);
    WriteDouble(stream, -50.0);
  }
  WriteOptionalI32(stream, std::nullopt);
  EXPECT_THROW(ReadSignalRecord(stream), Error);
}

TEST(SignalRecordWireTest, RejectsUnreasonableObservationCount) {
  std::stringstream stream;
  WriteU64(stream, kMaxObservations + 1);
  EXPECT_THROW(ReadSignalRecord(stream), Error);
}

std::vector<Message> AllMessageTypes() {
  PredictRequest named_batch;
  named_batch.model = "mall";
  named_batch.records = {MakeRecord(7), MakeRecord(), rf::SignalRecord()};
  PredictResponse mixed;
  mixed.results.push_back({PredictStatus::kOk, -3, ""});
  mixed.results.push_back({PredictStatus::kDiscarded, 0, ""});
  mixed.results.push_back({PredictStatus::kError, 0, "model not trained"});
  Pong pong;
  pong.protocol_version = 2;
  pong.ok = true;
  pong.model_generation = 42;
  Pong failed_pong;
  failed_pong.protocol_version = 2;
  failed_pong.ok = false;
  failed_pong.error = "unknown model 'x'";
  ReloadResponse reloaded;
  reloaded.ok = true;
  reloaded.model_generation = 3;
  reloaded.message = "model reloaded";
  ListModelsResponse listing;
  listing.default_model = "campus";
  listing.models = {{"campus", 2, true}, {"mall", 1, false}};
  StatsResponse stats;
  stats.connections_accepted = 17;
  stats.models = {{"campus", 2, 100, 9, 32, 3, PublishSource::kIngest, 12,
                   /*shared_bytes=*/777216, /*owned_bytes=*/4096},
                  {"mall", 1, 5, 5, 1, 0, PublishSource::kDisk, 0, 0, 99}};
  stats.transport = {/*connections_live=*/7, /*connections_harvested_idle=*/1,
                     /*frames_in=*/400,      /*frames_out=*/398,
                     /*bytes_in=*/65536,     /*bytes_out=*/32768,
                     /*requests_rejected_busy=*/2, /*event_workers=*/2};
  SubmitRecordsRequest submit;
  submit.model = "campus";
  submit.records = {MakeRecord(3), MakeRecord()};
  SubmitRecordsResponse submitted;
  submitted.results.push_back({SubmitStatus::kAccepted, ""});
  submitted.results.push_back({SubmitStatus::kRejected, "empty record"});
  IngestStatsResponse ingest_stats;
  ingest_stats.enabled = true;
  ingest_stats.models = {{"campus", 90, 2, 5, 80, 40, 12345, 3, 7,
                          /*fold_min_us=*/150, /*fold_mean_us=*/420,
                          /*fold_max_us=*/1800, /*last_fold_us=*/300,
                          /*journal_dropped_bytes=*/17,
                          /*replayed_batches=*/4}};
  ReloadRequest pinned_reload;
  pinned_reload.model = "mall";
  pinned_reload.generation = 6;
  CheckpointResponse checkpointed;
  checkpointed.ok = true;
  checkpointed.generation = 4;
  checkpointed.delta = true;
  checkpointed.bytes_written = 12345;
  checkpointed.message = "delta checkpoint written";
  CompactResponse compacted;
  compacted.ok = true;
  compacted.generation = 5;
  compacted.journal_bytes_reclaimed = 7777;
  compacted.message = "journal compacted";
  ListArtifactsResponse artifacts;
  artifacts.enabled = true;
  artifacts.artifacts = {{1, false, "campus.g1.base", 100000},
                         {2, true, "campus.g2.delta", 2048}};
  std::vector<Message> messages;
  messages.push_back(named_batch);
  messages.push_back(PredictRequest{"", {MakeRecord(7)}});
  messages.push_back(mixed);
  messages.push_back(Ping{});
  messages.push_back(Ping{"mall"});
  messages.push_back(pong);
  messages.push_back(failed_pong);
  messages.push_back(ReloadRequest{});
  messages.push_back(ReloadRequest{"mall"});
  messages.push_back(reloaded);
  messages.push_back(ListModelsRequest{});
  messages.push_back(listing);
  messages.push_back(StatsRequest{});
  messages.push_back(StatsRequest{"campus"});
  messages.push_back(stats);
  messages.push_back(submit);
  messages.push_back(submitted);
  messages.push_back(IngestStatsRequest{});
  messages.push_back(IngestStatsRequest{"campus"});
  messages.push_back(ingest_stats);
  messages.push_back(IngestStatsResponse{});  // ingest disabled
  messages.push_back(pinned_reload);
  messages.push_back(CheckpointRequest{});
  messages.push_back(CheckpointRequest{"mall"});
  messages.push_back(checkpointed);
  messages.push_back(CheckpointResponse{});  // failed checkpoint
  messages.push_back(CompactRequest{"campus"});
  messages.push_back(compacted);
  messages.push_back(ListArtifactsRequest{});
  messages.push_back(artifacts);
  messages.push_back(ListArtifactsResponse{});  // store disabled
  messages.push_back(MetricsRequest{});
  MetricsResponse metrics;
  metrics.text =
      "# HELP grafics_transport_frames_in_total Frames decoded.\n"
      "# TYPE grafics_transport_frames_in_total counter\n"
      "grafics_transport_frames_in_total 400\n";
  messages.push_back(metrics);
  messages.push_back(MetricsResponse{});  // telemetry not attached
  return messages;
}

TEST(ProtocolTest, EveryMessageTypeRoundTrips) {
  for (const Message& message : AllMessageTypes()) {
    std::uint32_t version = 0;
    EXPECT_EQ(DecodePayload(EncodePayload(message), &version), message);
    EXPECT_EQ(version, kProtocolVersion);
  }
}

TEST(ProtocolTest, FrameIsLengthPrefixedPayload) {
  const Message message = Ping{};
  const std::string payload = EncodePayload(message);
  const std::string frame = EncodeFrame(message);
  ASSERT_EQ(frame.size(), payload.size() + 4);
  std::uint32_t length = 0;
  std::memcpy(&length, frame.data(), sizeof(length));
  EXPECT_EQ(length, payload.size());
  EXPECT_EQ(frame.substr(4), payload);
}

// --- v1 <-> v2 compatibility ----------------------------------------------

/// Messages a v1 peer can express: unnamed, single-record, no admin types.
std::vector<Message> V1Messages() {
  PredictResponse ok;
  ok.results.push_back({PredictStatus::kOk, -3, ""});
  Pong pong;
  pong.protocol_version = 1;  // what decoding a v1 pong must report
  pong.model_generation = 42;
  ReloadResponse reloaded;
  reloaded.ok = true;
  reloaded.model_generation = 3;
  reloaded.message = "model reloaded";
  std::vector<Message> messages;
  messages.push_back(PredictRequest{"", {MakeRecord(7)}});
  messages.push_back(ok);
  messages.push_back(Ping{});
  messages.push_back(pong);
  messages.push_back(ReloadRequest{});
  messages.push_back(reloaded);
  return messages;
}

TEST(ProtocolV1CompatTest, V1FramesRoundTripThroughTheV2Decoder) {
  for (const Message& message : V1Messages()) {
    std::uint32_t version = 0;
    EXPECT_EQ(DecodePayload(EncodePayload(message, 1), &version), message);
    EXPECT_EQ(version, 1u);
  }
}

// layout-frozen: v1 — check_invariants.py requires this marker next to
// the byte-exact assertion for every dialect older than the current
// kProtocolVersion.
TEST(ProtocolV1CompatTest, V1EncodingMatchesTheOriginalWireBytes) {
  // A v1 PredictRequest body is the bare record — reconstruct the original
  // encoder by hand and compare byte-for-byte, so "keeps decoding v1" means
  // the actual PR 2 wire format and not merely our own idea of it.
  const rf::SignalRecord record = MakeRecord(7);
  std::ostringstream expected;
  WriteHeader(expected, kFrameMagic, 1);
  WriteU8(expected, 1);  // kPredictRequest
  WriteSignalRecord(expected, record);
  EXPECT_EQ(EncodePayload(PredictRequest{"", {record}}, 1),
            std::move(expected).str());

  std::ostringstream pong;
  WriteHeader(pong, kFrameMagic, 1);
  WriteU8(pong, 4);  // kPong
  WriteU64(pong, 42);
  EXPECT_EQ(EncodePayload(Pong{1, true, 42, ""}, 1), std::move(pong).str());
}

TEST(ProtocolV1CompatTest, DecodedV1PongReportsProtocolVersionOne) {
  const Message decoded = DecodePayload(EncodePayload(Pong{1, true, 7, ""}, 1));
  const auto* pong = std::get_if<Pong>(&decoded);
  ASSERT_NE(pong, nullptr);
  EXPECT_EQ(pong->protocol_version, 1u);
  EXPECT_EQ(pong->model_generation, 7u);
}

TEST(ProtocolV1CompatTest, V1CannotExpressNamesBatchesOrAdmin) {
  EXPECT_THROW(EncodePayload(PredictRequest{"mall", {MakeRecord()}}, 1),
               Error);
  EXPECT_THROW(
      EncodePayload(PredictRequest{"", {MakeRecord(), MakeRecord(1)}}, 1),
      Error);
  EXPECT_THROW(EncodePayload(Ping{"mall"}, 1), Error);
  EXPECT_THROW(EncodePayload(ReloadRequest{"mall"}, 1), Error);
  EXPECT_THROW(EncodePayload(ListModelsRequest{}, 1), Error);
  EXPECT_THROW(EncodePayload(StatsRequest{}, 1), Error);
  PredictResponse two;
  two.results.resize(2);
  EXPECT_THROW(EncodePayload(two, 1), Error);
}

TEST(ProtocolV1CompatTest, V1FrameWithAdminTypeCodeIsRejected) {
  for (const std::uint8_t type : {7, 8, 9, 10}) {
    std::ostringstream out;
    WriteHeader(out, kFrameMagic, 1);
    WriteU8(out, type);
    EXPECT_THROW(DecodePayload(std::move(out).str()), Error)
        << "type " << static_cast<unsigned>(type);
  }
}

// --- v2 <-> v3 compatibility ----------------------------------------------

/// Messages a v2 peer can express: everything except the ingest surface
/// and the v3/v4 ModelStats fields (publish source, pending ingest,
/// shared/owned snapshot bytes).
std::vector<Message> V2Messages() {
  PredictRequest named_batch;
  named_batch.model = "mall";
  named_batch.records = {MakeRecord(7), MakeRecord()};
  StatsResponse stats;
  stats.connections_accepted = 17;
  stats.models = {{"campus", 2, 100, 9, 32, 3}};
  ListModelsResponse listing;
  listing.default_model = "campus";
  listing.models = {{"campus", 2, true}};
  std::vector<Message> messages;
  messages.push_back(named_batch);
  messages.push_back(Ping{"mall"});
  messages.push_back(Pong{2, true, 42, ""});
  messages.push_back(ListModelsRequest{});
  messages.push_back(listing);
  messages.push_back(StatsRequest{"campus"});
  messages.push_back(stats);
  return messages;
}

TEST(ProtocolV2CompatTest, V2FramesRoundTripThroughTheV3Decoder) {
  for (const Message& message : V2Messages()) {
    std::uint32_t version = 0;
    EXPECT_EQ(DecodePayload(EncodePayload(message, 2), &version), message);
    EXPECT_EQ(version, 2u);
  }
}

// layout-frozen: v2
TEST(ProtocolV2CompatTest, V2StatsEncodingMatchesTheOriginalWireBytes) {
  // The PR 3 v2 ModelStats layout must survive byte-for-byte: the ingest
  // and snapshot-accounting fields exist only in v3 frames.
  StatsResponse stats;
  stats.connections_accepted = 17;
  stats.models = {{"campus", 2, 100, 9, 32, 3, PublishSource::kIngest, 12,
                   /*shared_bytes=*/555, /*owned_bytes=*/666}};
  std::ostringstream expected;
  WriteHeader(expected, kFrameMagic, 2);
  WriteU8(expected, 10);  // kStatsResponse
  WriteU64(expected, 17);
  WriteU32(expected, 1);
  WriteString(expected, "campus");
  for (const std::uint64_t value : {2, 100, 9, 32, 3}) {
    WriteU64(expected, value);
  }
  EXPECT_EQ(EncodePayload(stats, 2), std::move(expected).str());
  // Decoding the v2 bytes reports the defaults for the missing fields.
  const Message decoded = DecodePayload(EncodePayload(stats, 2));
  const auto* response = std::get_if<StatsResponse>(&decoded);
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(response->models[0].last_publish_source, PublishSource::kDisk);
  EXPECT_EQ(response->models[0].pending_ingest, 0u);
  EXPECT_EQ(response->models[0].shared_bytes, 0u);
  EXPECT_EQ(response->models[0].owned_bytes, 0u);
}

// layout-frozen: v3
TEST(ProtocolV3CompatTest, V3StatsEncodingsMatchThePr4WireBytes) {
  // The v3 layouts must survive the v4 bump byte-for-byte: snapshot
  // accounting (ModelStats) and fold latency (IngestModelStats) exist only
  // in v4 frames.
  StatsResponse stats;
  stats.connections_accepted = 17;
  stats.models = {{"campus", 2, 100, 9, 32, 3, PublishSource::kIngest, 12,
                   /*shared_bytes=*/555, /*owned_bytes=*/666}};
  std::ostringstream expected;
  WriteHeader(expected, kFrameMagic, 3);
  WriteU8(expected, 10);  // kStatsResponse
  WriteU64(expected, 17);
  WriteU32(expected, 1);
  WriteString(expected, "campus");
  for (const std::uint64_t value : {2, 100, 9, 32, 3}) {
    WriteU64(expected, value);
  }
  WriteU8(expected, 1);  // PublishSource::kIngest
  WriteU64(expected, 12);
  EXPECT_EQ(EncodePayload(stats, 3), std::move(expected).str());
  // Decoding the v3 bytes reports zero for the v4-only fields.
  const Message decoded = DecodePayload(EncodePayload(stats, 3));
  const auto* response = std::get_if<StatsResponse>(&decoded);
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(response->models[0].pending_ingest, 12u);
  EXPECT_EQ(response->models[0].shared_bytes, 0u);
  EXPECT_EQ(response->models[0].owned_bytes, 0u);

  IngestStatsResponse ingest;
  ingest.enabled = true;
  ingest.models = {{"campus", 90, 2, 5, 80, 40, 12345, 3, 7,
                    /*fold_min_us=*/150, /*fold_mean_us=*/420,
                    /*fold_max_us=*/1800, /*last_fold_us=*/300}};
  std::ostringstream ingest_expected;
  WriteHeader(ingest_expected, kFrameMagic, 3);
  WriteU8(ingest_expected, 14);  // kIngestStatsResponse
  WriteU8(ingest_expected, 1);
  WriteU32(ingest_expected, 1);
  WriteString(ingest_expected, "campus");
  for (const std::uint64_t value : {90, 2, 5, 80, 40, 12345, 3, 7}) {
    WriteU64(ingest_expected, value);
  }
  EXPECT_EQ(EncodePayload(ingest, 3), std::move(ingest_expected).str());
  const Message ingest_decoded = DecodePayload(EncodePayload(ingest, 3));
  const auto* ingest_response =
      std::get_if<IngestStatsResponse>(&ingest_decoded);
  ASSERT_NE(ingest_response, nullptr);
  EXPECT_EQ(ingest_response->models[0].publishes, 3u);
  EXPECT_EQ(ingest_response->models[0].fold_min_us, 0u);
  EXPECT_EQ(ingest_response->models[0].last_fold_us, 0u);
}

// layout-frozen: v4
TEST(ProtocolV4CompatTest, V4StatsEncodingMatchesThePr5WireBytes) {
  // The v4 StatsResponse layout must survive the v5 bump byte-for-byte:
  // the transport block exists only in v5 frames, after the models array.
  StatsResponse stats;
  stats.connections_accepted = 17;
  stats.models = {{"campus", 2, 100, 9, 32, 3, PublishSource::kIngest, 12,
                   /*shared_bytes=*/555, /*owned_bytes=*/666}};
  stats.transport.connections_live = 3;
  stats.transport.frames_in = 1000;  // must NOT leak into v4 bytes
  std::ostringstream expected;
  WriteHeader(expected, kFrameMagic, 4);
  WriteU8(expected, 10);  // kStatsResponse
  WriteU64(expected, 17);
  WriteU32(expected, 1);
  WriteString(expected, "campus");
  for (const std::uint64_t value : {2, 100, 9, 32, 3}) {
    WriteU64(expected, value);
  }
  WriteU8(expected, 1);  // PublishSource::kIngest
  WriteU64(expected, 12);
  WriteU64(expected, 555);
  WriteU64(expected, 666);
  EXPECT_EQ(EncodePayload(stats, 4), std::move(expected).str());
  // Decoding the v4 bytes reports the all-zero transport defaults.
  const Message decoded = DecodePayload(EncodePayload(stats, 4));
  const auto* response = std::get_if<StatsResponse>(&decoded);
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(response->models[0].shared_bytes, 555u);
  EXPECT_EQ(response->transport, TransportStats{});
}

TEST(ProtocolV5Test, TransportStatsRoundTripWithNonZeroCounters) {
  StatsResponse stats;
  stats.connections_accepted = 17;
  stats.models = {{"campus", 2, 100, 9, 32, 3, PublishSource::kIngest, 12,
                   /*shared_bytes=*/555, /*owned_bytes=*/666}};
  stats.transport = {/*connections_live=*/2048,
                     /*connections_harvested_idle=*/9,
                     /*frames_in=*/123456,
                     /*frames_out=*/123400,
                     /*bytes_in=*/99887766,
                     /*bytes_out=*/55443322,
                     /*requests_rejected_busy=*/31,
                     /*event_workers=*/4};
  std::uint32_t version = 0;
  const Message decoded = DecodePayload(EncodePayload(stats, 5), &version);
  EXPECT_EQ(version, 5u);
  const auto* response = std::get_if<StatsResponse>(&decoded);
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(*response, stats);
  // The transport block sits after the models array, so the v5 payload is
  // exactly the v4 payload plus the eight u64 counters.
  EXPECT_EQ(EncodePayload(stats, 5).size(),
            EncodePayload(stats, 4).size() + 64);
}

// --- v5 <-> v6 compatibility ----------------------------------------------

// layout-frozen: v5
TEST(ProtocolV5CompatTest, V5EncodingsAreFrozenByTheV6Bump) {
  // StatsResponse: the store block exists only in v6 frames, after the
  // transport block — u8 enabled + three u64 counters = 25 bytes.
  StatsResponse stats;
  stats.connections_accepted = 17;
  stats.models = {{"campus", 2, 100, 9, 32, 3, PublishSource::kIngest, 12,
                   /*shared_bytes=*/555, /*owned_bytes=*/666}};
  stats.store = {/*enabled=*/true, /*base_count=*/3, /*delta_count=*/9,
                 /*journal_bytes_reclaimed=*/4096};  // must NOT leak into v5
  EXPECT_EQ(EncodePayload(stats).size(), EncodePayload(stats, 5).size() + 25);
  {
    const Message decoded = DecodePayload(EncodePayload(stats, 5));
    const auto* response = std::get_if<StatsResponse>(&decoded);
    ASSERT_NE(response, nullptr);
    EXPECT_EQ(response->store, StoreStats{});
  }

  // IngestModelStats: the journal_dropped_bytes + replayed_batches pair is
  // a v6-only suffix of each model entry — two u64s.
  IngestStatsResponse ingest;
  ingest.enabled = true;
  ingest.models = {{"campus", 90, 2, 5, 80, 40, 12345, 3, 7, 150, 420, 1800,
                    300, /*journal_dropped_bytes=*/17,
                    /*replayed_batches=*/4}};
  EXPECT_EQ(EncodePayload(ingest).size(),
            EncodePayload(ingest, 5).size() + 16);
  {
    const Message decoded = DecodePayload(EncodePayload(ingest, 5));
    const auto* response = std::get_if<IngestStatsResponse>(&decoded);
    ASSERT_NE(response, nullptr);
    EXPECT_EQ(response->models[0].journal_dropped_bytes, 0u);
    EXPECT_EQ(response->models[0].replayed_batches, 0u);
  }

  // ReloadRequest: the generation pin is a v6-only u64; an unpinned reload
  // still encodes at v5 byte-for-byte, a pinned one cannot be expressed.
  EXPECT_EQ(EncodePayload(ReloadRequest{"mall"}).size(),
            EncodePayload(ReloadRequest{"mall"}, 5).size() + 8);
  ReloadRequest pinned;
  pinned.generation = 3;
  EXPECT_THROW(EncodePayload(pinned, 5), Error);
  EXPECT_THROW(EncodePayload(pinned, 2), Error);
}

TEST(ProtocolV5CompatTest, OlderVersionsCannotExpressStoreMessages) {
  const std::vector<Message> store_messages = {
      CheckpointRequest{},      CheckpointResponse{},
      CompactRequest{},         CompactResponse{},
      ListArtifactsRequest{},   ListArtifactsResponse{},
  };
  for (const Message& message : store_messages) {
    for (const std::uint32_t version : {1u, 2u, 3u, 4u, 5u}) {
      EXPECT_THROW(EncodePayload(message, version), Error)
          << "version " << version;
    }
  }
}

TEST(ProtocolV5CompatTest, OlderFramesWithStoreTypeCodesAreRejected) {
  for (const std::uint32_t version : {1u, 2u, 3u, 4u, 5u}) {
    for (const std::uint8_t type : {15, 16, 17, 18, 19, 20}) {
      std::ostringstream out;
      WriteHeader(out, kFrameMagic, version);
      WriteU8(out, type);
      EXPECT_THROW(DecodePayload(std::move(out).str()), Error)
          << "version " << version << " type "
          << static_cast<unsigned>(type);
    }
  }
}

TEST(ProtocolV6Test, ArtifactListingsAreBoundedAgainstHostileLengths) {
  // A hostile artifact count must be rejected before allocating.
  std::ostringstream out;
  WriteHeader(out, kFrameMagic, kProtocolVersion);
  WriteU8(out, 20);  // kListArtifactsResponse
  WriteU8(out, 1);   // enabled
  WriteU32(out, 0xFFFFFFFFu);
  EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
}

// --- v6 <-> v7 compatibility ----------------------------------------------

// layout-frozen: v6
TEST(ProtocolV6CompatTest, V6EncodingsAreFrozenByTheV7Bump) {
  // v7 adds only the two metrics message types; no existing message grew a
  // field. Every v6-expressible message must therefore encode at v6 into
  // exactly its v7 bytes with only the header's version word differing —
  // and keep decoding.
  std::ostringstream v6_header_stream;
  WriteHeader(v6_header_stream, kFrameMagic, 6);
  const std::string v6_header = std::move(v6_header_stream).str();
  for (const Message& message : AllMessageTypes()) {
    if (std::holds_alternative<MetricsRequest>(message) ||
        std::holds_alternative<MetricsResponse>(message)) {
      continue;
    }
    const std::string v6 = EncodePayload(message, 6);
    const std::string v7 = EncodePayload(message, kProtocolVersion);
    ASSERT_EQ(v6.substr(0, v6_header.size()), v6_header);
    EXPECT_EQ(v6.substr(v6_header.size()), v7.substr(v6_header.size()));
    std::uint32_t version = 0;
    EXPECT_EQ(DecodePayload(v6, &version), message);
    EXPECT_EQ(version, 6u);
  }
}

TEST(ProtocolV6CompatTest, OlderVersionsCannotExpressMetricsMessages) {
  for (const Message& message :
       {Message(MetricsRequest{}), Message(MetricsResponse{"x 1\n"})}) {
    for (const std::uint32_t version : {1u, 2u, 3u, 4u, 5u, 6u}) {
      EXPECT_THROW(EncodePayload(message, version), Error)
          << "version " << version;
    }
  }
}

TEST(ProtocolV6CompatTest, OlderFramesWithMetricsTypeCodesAreRejected) {
  for (const std::uint32_t version : {1u, 2u, 3u, 4u, 5u, 6u}) {
    for (const std::uint8_t type : {21, 22}) {
      std::ostringstream out;
      WriteHeader(out, kFrameMagic, version);
      WriteU8(out, type);
      EXPECT_THROW(DecodePayload(std::move(out).str()), Error)
          << "version " << version << " type "
          << static_cast<unsigned>(type);
    }
  }
}

TEST(ProtocolV7Test, MetricsResponseEncodingIsTypeByteThenString) {
  MetricsResponse metrics;
  metrics.text = "grafics_up 1\n";
  std::ostringstream expected;
  WriteHeader(expected, kFrameMagic, kProtocolVersion);
  WriteU8(expected, 22);  // kMetricsResponse
  WriteString(expected, metrics.text);
  EXPECT_EQ(EncodePayload(metrics), std::move(expected).str());
}

TEST(ProtocolV7Test, OversizedMetricsDumpIsRejectedAtEncode) {
  MetricsResponse metrics;
  metrics.text.assign(kMaxFrameBytes, 'x');
  EXPECT_THROW(EncodePayload(metrics), Error);
}

TEST(ProtocolV2CompatTest, OlderVersionsCannotExpressIngestMessages) {
  const std::vector<Message> ingest_messages = {
      SubmitRecordsRequest{"", {MakeRecord()}},
      SubmitRecordsResponse{{{SubmitStatus::kAccepted, ""}}},
      IngestStatsRequest{},
      IngestStatsResponse{},
  };
  for (const Message& message : ingest_messages) {
    EXPECT_THROW(EncodePayload(message, 1), Error);
    EXPECT_THROW(EncodePayload(message, 2), Error);
  }
}

TEST(ProtocolV2CompatTest, OlderFramesWithIngestTypeCodesAreRejected) {
  for (const std::uint32_t version : {1u, 2u}) {
    for (const std::uint8_t type : {11, 12, 13, 14}) {
      std::ostringstream out;
      WriteHeader(out, kFrameMagic, version);
      WriteU8(out, type);
      EXPECT_THROW(DecodePayload(std::move(out).str()), Error)
          << "version " << version << " type "
          << static_cast<unsigned>(type);
    }
  }
}

// --- malformed v2 frames --------------------------------------------------

TEST(ProtocolTest, RejectsBadModelNameLength) {
  std::ostringstream out;
  WriteHeader(out, kFrameMagic, kProtocolVersion);
  WriteU8(out, 1);  // kPredictRequest
  WriteString(out, std::string(kMaxModelNameBytes + 1, 'm'));
  WriteU32(out, 1);
  WriteSignalRecord(out, MakeRecord());
  EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
}

TEST(ProtocolTest, RejectsHostileModelNameLengthBeforeAllocating) {
  std::ostringstream out;
  WriteHeader(out, kFrameMagic, kProtocolVersion);
  WriteU8(out, 3);                     // kPing
  WriteU64(out, 0xFFFFFFFFFFFFFFFF);  // declared name length
  EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
}

TEST(ProtocolTest, RejectsHostileStringFieldLengthBeforeAllocating) {
  // A free-form string field (here ReloadResponse.message) declaring ~4 GiB
  // must be an Error before any allocation, like model names are.
  std::ostringstream out;
  WriteHeader(out, kFrameMagic, kProtocolVersion);
  WriteU8(out, 6);  // kReloadResponse
  WriteU8(out, 1);
  WriteU64(out, 3);
  WriteU64(out, 0xFFFFFFFFULL);  // declared message length
  EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
}

TEST(ProtocolTest, RejectsZeroRecordBatch) {
  std::ostringstream out;
  WriteHeader(out, kFrameMagic, kProtocolVersion);
  WriteU8(out, 1);  // kPredictRequest
  WriteString(out, "");
  WriteU32(out, 0);
  EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
  EXPECT_THROW(EncodePayload(PredictRequest{}), Error);
}

TEST(ProtocolTest, RejectsOversizedBatch) {
  std::ostringstream out;
  WriteHeader(out, kFrameMagic, kProtocolVersion);
  WriteU8(out, 1);  // kPredictRequest
  WriteString(out, "");
  WriteU32(out, static_cast<std::uint32_t>(kMaxBatchRecords + 1));
  EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
}

TEST(ProtocolTest, RejectsZeroAndOversizedSubmitBatches) {
  // SubmitRecords is bounded exactly like v2 predict: zero-record and
  // oversized batches (and hostile name lengths) die before any record
  // allocation happens.
  for (const std::uint32_t count :
       {0u, static_cast<std::uint32_t>(kMaxBatchRecords + 1)}) {
    std::ostringstream out;
    WriteHeader(out, kFrameMagic, kProtocolVersion);
    WriteU8(out, 11);  // kSubmitRecordsRequest
    WriteString(out, "");
    WriteU32(out, count);
    EXPECT_THROW(DecodePayload(std::move(out).str()), Error)
        << "count " << count;
  }
  EXPECT_THROW(EncodePayload(SubmitRecordsRequest{}), Error);
  std::vector<rf::SignalRecord> oversized(kMaxBatchRecords + 1,
                                          MakeRecord());
  EXPECT_THROW(
      EncodePayload(SubmitRecordsRequest{"", std::move(oversized)}), Error);
}

TEST(ProtocolTest, RejectsHostileSubmitFieldsBeforeAllocating) {
  {
    std::ostringstream out;  // ~4 GiB declared model name
    WriteHeader(out, kFrameMagic, kProtocolVersion);
    WriteU8(out, 11);  // kSubmitRecordsRequest
    WriteU64(out, 0xFFFFFFFFULL);
    EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
  }
  {
    std::ostringstream out;  // absurd observation count inside a record
    WriteHeader(out, kFrameMagic, kProtocolVersion);
    WriteU8(out, 11);
    WriteString(out, "");
    WriteU32(out, 1);
    WriteU64(out, kMaxObservations + 1);
    EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
  }
  {
    std::ostringstream out;  // bad status byte in a submit response
    WriteHeader(out, kFrameMagic, kProtocolVersion);
    WriteU8(out, 12);  // kSubmitRecordsResponse
    WriteU32(out, 1);
    WriteU8(out, 9);
    WriteString(out, "");
    EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
  }
}

TEST(ProtocolTest, EveryTruncationIsRejectedNotCrashing) {
  const std::string payload =
      EncodePayload(PredictRequest{"mall", {MakeRecord(2), MakeRecord()}});
  for (std::size_t keep = 0; keep < payload.size(); ++keep) {
    EXPECT_THROW(DecodePayload(payload.substr(0, keep)), Error)
        << "prefix of " << keep << " bytes";
  }
}

TEST(ProtocolTest, RejectsGarbageMagic) {
  std::string payload = EncodePayload(Ping{});
  payload[0] = 'X';
  EXPECT_THROW(DecodePayload(payload), Error);
}

TEST(ProtocolTest, RejectsWrongVersion) {
  std::ostringstream out;
  WriteHeader(out, kFrameMagic, kProtocolVersion + 1);
  WriteU8(out, 3);  // Ping
  EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
  EXPECT_THROW(EncodePayload(Ping{}, kProtocolVersion + 1), Error);
  EXPECT_THROW(EncodePayload(Ping{}, 0), Error);
}

TEST(ProtocolTest, RejectsUnknownMessageType) {
  std::ostringstream out;
  WriteHeader(out, kFrameMagic, kProtocolVersion);
  WriteU8(out, 250);
  EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
}

TEST(ProtocolTest, RejectsTrailingBytes) {
  std::string payload = EncodePayload(Ping{});
  payload.push_back('\0');
  EXPECT_THROW(DecodePayload(payload), Error);
}

/// Loopback socket pair for exercising the fd framing helpers.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  }
  ~SocketPair() {
    for (const int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
  void CloseWriter() {
    ::close(fds[0]);
    fds[0] = -1;
  }
};

TEST(FramingTest, SendReceiveRoundTripsOverSocket) {
  SocketPair pair;
  for (const Message& message : AllMessageTypes()) {
    SendFrame(pair.fds[0], message);
    const std::optional<Message> received = ReceiveFrame(pair.fds[1]);
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(*received, message);
  }
}

TEST(FramingTest, V1FramesRoundTripOverSocket) {
  SocketPair pair;
  for (const Message& message : V1Messages()) {
    SendFrame(pair.fds[0], message, 1);
    const std::optional<Message> received = ReceiveFrame(pair.fds[1]);
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(*received, message);
  }
}

TEST(FramingTest, CleanCloseIsEndOfStreamNotError) {
  SocketPair pair;
  SendFrame(pair.fds[0], Ping{});
  pair.CloseWriter();
  EXPECT_TRUE(ReceiveFrame(pair.fds[1]).has_value());
  EXPECT_FALSE(ReceiveFramePayload(pair.fds[1]).has_value());
}

TEST(FramingTest, TruncatedFrameThrows) {
  {
    SocketPair pair;  // peer dies inside the length prefix
    const char partial[2] = {0x10, 0x00};
    ASSERT_EQ(::send(pair.fds[0], partial, sizeof(partial), 0),
              static_cast<ssize_t>(sizeof(partial)));
    pair.CloseWriter();
    EXPECT_THROW(ReceiveFramePayload(pair.fds[1]), Error);
  }
  {
    SocketPair pair;  // peer dies inside the payload
    const std::string frame = EncodeFrame(PredictRequest{"", {MakeRecord()}});
    ASSERT_EQ(::send(pair.fds[0], frame.data(), frame.size() - 3, 0),
              static_cast<ssize_t>(frame.size() - 3));
    pair.CloseWriter();
    EXPECT_THROW(ReceiveFramePayload(pair.fds[1]), Error);
  }
}

TEST(FramingTest, OversizedDeclaredLengthRejectedBeforeAllocation) {
  SocketPair pair;
  const std::uint32_t huge = 0x7FFFFFFF;
  ASSERT_EQ(::send(pair.fds[0], &huge, sizeof(huge), 0),
            static_cast<ssize_t>(sizeof(huge)));
  EXPECT_THROW(ReceiveFramePayload(pair.fds[1]), Error);
}

TEST(FramingTest, RespectsCustomFrameLimit) {
  SocketPair pair;
  SendFrame(pair.fds[0], PredictRequest{"", {MakeRecord()}});
  EXPECT_THROW(ReceiveFramePayload(pair.fds[1], /*max_bytes=*/4), Error);
}

}  // namespace
}  // namespace grafics::serve
