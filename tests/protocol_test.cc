// Tests for the serving wire protocol: round-trips for every message type,
// and rejection (grafics::Error, never a crash) of truncated, garbage,
// oversized, and trailing-byte frames — including over a real socket pair.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/serialize.h"
#include "serve/protocol.h"

namespace grafics::serve {
namespace {

rf::SignalRecord MakeRecord(std::optional<rf::FloorId> floor = std::nullopt) {
  rf::SignalRecord record;
  record.Add(rf::MacAddress(0xAABBCCDDEEFF), -48.5);
  record.Add(rf::MacAddress(0x112233445566), -73.25);
  record.set_floor(floor);
  return record;
}

TEST(SignalRecordWireTest, RoundTripsLabeledUnlabeledAndEmpty) {
  for (const rf::SignalRecord& record :
       {MakeRecord(), MakeRecord(4), MakeRecord(-2), rf::SignalRecord()}) {
    std::stringstream stream;
    WriteSignalRecord(stream, record);
    EXPECT_EQ(ReadSignalRecord(stream), record);
  }
}

TEST(SignalRecordWireTest, RejectsOutOfRangeMacBits) {
  std::stringstream stream;
  WriteU64(stream, 1);                     // one observation
  WriteU64(stream, 0x1FFFFFFFFFFFFFULL);   // 53 bits: not a MAC
  WriteDouble(stream, -50.0);
  WriteOptionalI32(stream, std::nullopt);
  EXPECT_THROW(ReadSignalRecord(stream), Error);
}

TEST(SignalRecordWireTest, RejectsDuplicateMacs) {
  std::stringstream stream;
  WriteU64(stream, 2);
  for (int i = 0; i < 2; ++i) {
    WriteU64(stream, 0xAABBCCDDEEFF);
    WriteDouble(stream, -50.0);
  }
  WriteOptionalI32(stream, std::nullopt);
  EXPECT_THROW(ReadSignalRecord(stream), Error);
}

TEST(SignalRecordWireTest, RejectsUnreasonableObservationCount) {
  std::stringstream stream;
  WriteU64(stream, kMaxObservations + 1);
  EXPECT_THROW(ReadSignalRecord(stream), Error);
}

std::vector<Message> AllMessageTypes() {
  PredictResponse ok;
  ok.status = PredictStatus::kOk;
  ok.floor = -3;
  PredictResponse error;
  error.status = PredictStatus::kError;
  error.error = "model not trained";
  ReloadResponse reloaded;
  reloaded.ok = true;
  reloaded.model_generation = 3;
  reloaded.message = "model reloaded";
  std::vector<Message> messages;
  messages.push_back(PredictRequest{MakeRecord(7)});
  messages.push_back(ok);
  messages.push_back(error);
  messages.push_back(Ping{});
  messages.push_back(Pong{42});
  messages.push_back(ReloadRequest{});
  messages.push_back(reloaded);
  return messages;
}

TEST(ProtocolTest, EveryMessageTypeRoundTrips) {
  for (const Message& message : AllMessageTypes()) {
    EXPECT_EQ(DecodePayload(EncodePayload(message)), message);
  }
}

TEST(ProtocolTest, FrameIsLengthPrefixedPayload) {
  const Message message = Ping{};
  const std::string payload = EncodePayload(message);
  const std::string frame = EncodeFrame(message);
  ASSERT_EQ(frame.size(), payload.size() + 4);
  std::uint32_t length = 0;
  std::memcpy(&length, frame.data(), sizeof(length));
  EXPECT_EQ(length, payload.size());
  EXPECT_EQ(frame.substr(4), payload);
}

TEST(ProtocolTest, EveryTruncationIsRejectedNotCrashing) {
  const std::string payload = EncodePayload(PredictRequest{MakeRecord(2)});
  for (std::size_t keep = 0; keep < payload.size(); ++keep) {
    EXPECT_THROW(DecodePayload(payload.substr(0, keep)), Error)
        << "prefix of " << keep << " bytes";
  }
}

TEST(ProtocolTest, RejectsGarbageMagic) {
  std::string payload = EncodePayload(Ping{});
  payload[0] = 'X';
  EXPECT_THROW(DecodePayload(payload), Error);
}

TEST(ProtocolTest, RejectsWrongVersion) {
  std::ostringstream out;
  WriteHeader(out, kFrameMagic, kProtocolVersion + 1);
  WriteU8(out, 3);  // Ping
  EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
}

TEST(ProtocolTest, RejectsUnknownMessageType) {
  std::ostringstream out;
  WriteHeader(out, kFrameMagic, kProtocolVersion);
  WriteU8(out, 250);
  EXPECT_THROW(DecodePayload(std::move(out).str()), Error);
}

TEST(ProtocolTest, RejectsTrailingBytes) {
  std::string payload = EncodePayload(Ping{});
  payload.push_back('\0');
  EXPECT_THROW(DecodePayload(payload), Error);
}

/// Loopback socket pair for exercising the fd framing helpers.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  }
  ~SocketPair() {
    for (const int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
  void CloseWriter() {
    ::close(fds[0]);
    fds[0] = -1;
  }
};

TEST(FramingTest, SendReceiveRoundTripsOverSocket) {
  SocketPair pair;
  for (const Message& message : AllMessageTypes()) {
    SendFrame(pair.fds[0], message);
    const std::optional<Message> received = ReceiveFrame(pair.fds[1]);
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(*received, message);
  }
}

TEST(FramingTest, CleanCloseIsEndOfStreamNotError) {
  SocketPair pair;
  SendFrame(pair.fds[0], Ping{});
  pair.CloseWriter();
  EXPECT_TRUE(ReceiveFrame(pair.fds[1]).has_value());
  EXPECT_FALSE(ReceiveFramePayload(pair.fds[1]).has_value());
}

TEST(FramingTest, TruncatedFrameThrows) {
  {
    SocketPair pair;  // peer dies inside the length prefix
    const char partial[2] = {0x10, 0x00};
    ASSERT_EQ(::send(pair.fds[0], partial, sizeof(partial), 0),
              static_cast<ssize_t>(sizeof(partial)));
    pair.CloseWriter();
    EXPECT_THROW(ReceiveFramePayload(pair.fds[1]), Error);
  }
  {
    SocketPair pair;  // peer dies inside the payload
    const std::string frame = EncodeFrame(PredictRequest{MakeRecord()});
    ASSERT_EQ(::send(pair.fds[0], frame.data(), frame.size() - 3, 0),
              static_cast<ssize_t>(frame.size() - 3));
    pair.CloseWriter();
    EXPECT_THROW(ReceiveFramePayload(pair.fds[1]), Error);
  }
}

TEST(FramingTest, OversizedDeclaredLengthRejectedBeforeAllocation) {
  SocketPair pair;
  const std::uint32_t huge = 0x7FFFFFFF;
  ASSERT_EQ(::send(pair.fds[0], &huge, sizeof(huge), 0),
            static_cast<ssize_t>(sizeof(huge)));
  EXPECT_THROW(ReceiveFramePayload(pair.fds[1]), Error);
}

TEST(FramingTest, RespectsCustomFrameLimit) {
  SocketPair pair;
  SendFrame(pair.fds[0], PredictRequest{MakeRecord()});
  EXPECT_THROW(ReceiveFramePayload(pair.fds[1], /*max_bytes=*/4), Error);
}

}  // namespace
}  // namespace grafics::serve
