#include "synth/generator.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/error.h"
#include "rf/dataset_stats.h"
#include "synth/path_loss.h"
#include "synth/presets.h"

namespace grafics::synth {
namespace {

BuildingSimulator MakeSmallSim(std::uint64_t seed = 1) {
  BuildingSpec spec;
  spec.num_floors = 3;
  spec.aps_per_floor = 20;
  spec.records_per_floor = 50;
  return BuildingSimulator(spec, PathLossParams{}, CrowdsourceParams{}, seed);
}

TEST(PathLossTest, MonotoneInDistance) {
  const PathLossModel model(PathLossParams{});
  AccessPoint ap;
  ap.tx_power_dbm = -35.0;
  ap.position = {0.0, 0.0, 2.5};
  ap.floor = 0;
  const double near = model.MeanRssi(ap, {2.0, 0.0, 1.2}, 0);
  const double far = model.MeanRssi(ap, {40.0, 0.0, 1.2}, 0);
  EXPECT_GT(near, far);
}

TEST(PathLossTest, SaturatesInsideReferenceDistance) {
  const PathLossModel model(PathLossParams{});
  AccessPoint ap;
  ap.tx_power_dbm = -35.0;
  ap.position = {0.0, 0.0, 1.2};
  ap.floor = 0;
  EXPECT_DOUBLE_EQ(model.MeanRssi(ap, {0.0, 0.0, 1.2}, 0), -35.0);
  EXPECT_DOUBLE_EQ(model.MeanRssi(ap, {0.5, 0.0, 1.2}, 0), -35.0);
}

TEST(PathLossTest, FloorAttenuationAppliesPerFloorCrossed) {
  PathLossParams params;
  params.floor_attenuation_db = 10.0;
  params.shadowing_stddev_db = 0.0;
  const PathLossModel model(params);
  AccessPoint ap;
  ap.tx_power_dbm = -35.0;
  ap.position = {0.0, 0.0, 2.5};
  ap.floor = 0;
  const double same = model.MeanRssi(ap, {10.0, 0.0, 1.2}, 0);
  const double one_up = model.MeanRssi(ap, {10.0, 0.0, 5.2}, 1);
  const double two_up = model.MeanRssi(ap, {10.0, 0.0, 9.2}, 2);
  // Each crossed floor costs ~10 dB beyond the extra 3-D distance.
  EXPECT_LT(one_up, same - 9.0);
  EXPECT_LT(two_up, one_up - 9.0);
}

TEST(PathLossTest, DetectionThreshold) {
  PathLossParams params;
  params.detection_threshold_dbm = -90.0;
  const PathLossModel model(params);
  EXPECT_TRUE(model.Detectable(-89.9));
  EXPECT_TRUE(model.Detectable(-90.0));
  EXPECT_FALSE(model.Detectable(-90.1));
}

TEST(PathLossTest, ShadowingIsZeroMeanNoise) {
  PathLossParams params;
  params.shadowing_stddev_db = 3.0;
  const PathLossModel model(params);
  AccessPoint ap;
  ap.tx_power_dbm = -35.0;
  ap.position = {5.0, 5.0, 2.5};
  ap.floor = 0;
  const Point rx{10.0, 10.0, 1.2};
  const double mean = model.MeanRssi(ap, rx, 0);
  Rng rng(3);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += model.SampleRssi(ap, rx, 0, rng);
  EXPECT_NEAR(sum / kN, mean, 0.1);
}

TEST(BuildingSimulatorTest, DeploysExpectedApCount) {
  const BuildingSimulator sim = MakeSmallSim();
  EXPECT_EQ(sim.ApCount(), 60u);
}

TEST(BuildingSimulatorTest, ApsHaveDistinctMacs) {
  const BuildingSimulator sim = MakeSmallSim();
  std::unordered_set<std::uint64_t> macs;
  for (const AccessPoint& ap : sim.access_points()) macs.insert(ap.mac_bits);
  EXPECT_EQ(macs.size(), sim.ApCount());
}

TEST(BuildingSimulatorTest, ApsWithinFloorBounds) {
  const BuildingSimulator sim = MakeSmallSim();
  const BuildingSpec& spec = sim.spec();
  for (const AccessPoint& ap : sim.access_points()) {
    EXPECT_GE(ap.position.x, 0.0);
    EXPECT_LE(ap.position.x, spec.floor_width_m);
    EXPECT_GE(ap.position.y, 0.0);
    EXPECT_LE(ap.position.y, spec.floor_depth_m);
    EXPECT_GE(ap.floor, 0);
    EXPECT_LT(ap.floor, spec.num_floors);
  }
}

TEST(BuildingSimulatorTest, GenerateDatasetShape) {
  BuildingSimulator sim = MakeSmallSim();
  const rf::Dataset ds = sim.GenerateDataset();
  EXPECT_EQ(ds.size(), 150u);
  const auto per_floor = ds.RecordsPerFloor();
  ASSERT_EQ(per_floor.size(), 3u);
  for (const auto& [floor, count] : per_floor) EXPECT_EQ(count, 50u);
  // Every record labeled at generation time.
  EXPECT_EQ(ds.LabeledCount(), ds.size());
}

TEST(BuildingSimulatorTest, RecordsRespectScanCap) {
  BuildingSpec spec;
  spec.num_floors = 1;
  spec.aps_per_floor = 100;
  spec.records_per_floor = 30;
  CrowdsourceParams crowd;
  crowd.scan_cap_min = 5;
  crowd.scan_cap_max = 12;
  BuildingSimulator sim(spec, PathLossParams{}, crowd, 7);
  for (const rf::SignalRecord& r : sim.GenerateRecordsOnFloor(0, 30)) {
    EXPECT_LE(r.size(), 12u);
    EXPECT_GE(r.size(), 1u);
  }
}

TEST(BuildingSimulatorTest, DeterministicInSeed) {
  BuildingSimulator sim1 = MakeSmallSim(99);
  BuildingSimulator sim2 = MakeSmallSim(99);
  const rf::Dataset ds1 = sim1.GenerateDataset();
  const rf::Dataset ds2 = sim2.GenerateDataset();
  EXPECT_EQ(ds1.records(), ds2.records());
}

TEST(BuildingSimulatorTest, DifferentSeedsDiffer) {
  BuildingSimulator sim1 = MakeSmallSim(1);
  BuildingSimulator sim2 = MakeSmallSim(2);
  EXPECT_NE(sim1.GenerateDataset().records(),
            sim2.GenerateDataset().records());
}

TEST(BuildingSimulatorTest, MeasureAtIsLabeledWithFloor) {
  BuildingSimulator sim = MakeSmallSim();
  const rf::SignalRecord r = sim.MeasureAt({10.0, 10.0, 5.2}, 1);
  EXPECT_EQ(*r.floor(), 1);
}

TEST(BuildingSimulatorTest, InvalidFloorThrows) {
  BuildingSimulator sim = MakeSmallSim();
  EXPECT_THROW(sim.GenerateRecordsOnFloor(3, 5), Error);
  EXPECT_THROW(sim.GenerateRecordsOnFloor(-1, 5), Error);
}

TEST(BuildingSimulatorTest, RemoveRandomApsShrinks) {
  BuildingSimulator sim = MakeSmallSim();
  EXPECT_EQ(sim.RemoveRandomAps(10), 10u);
  EXPECT_EQ(sim.ApCount(), 50u);
  // Removing more than exist removes all.
  EXPECT_EQ(sim.RemoveRandomAps(1000), 50u);
  EXPECT_EQ(sim.ApCount(), 0u);
}

TEST(BuildingSimulatorTest, InstallApsAddsFreshMacs) {
  BuildingSimulator sim = MakeSmallSim();
  std::unordered_set<std::uint64_t> before;
  for (const AccessPoint& ap : sim.access_points()) before.insert(ap.mac_bits);
  sim.InstallAps(5);
  EXPECT_EQ(sim.ApCount(), 65u);
  std::size_t fresh = 0;
  for (const AccessPoint& ap : sim.access_points()) {
    if (!before.contains(ap.mac_bits)) ++fresh;
  }
  EXPECT_EQ(fresh, 5u);
}

TEST(PresetsTest, MicrosoftFleetWithinFigure9Ranges) {
  const auto fleet = MicrosoftLikeFleet(20, 11);
  ASSERT_EQ(fleet.size(), 20u);
  for (const BuildingConfig& cfg : fleet) {
    EXPECT_GE(cfg.spec.num_floors, 2);
    EXPECT_LE(cfg.spec.num_floors, 12);
    EXPECT_GE(cfg.spec.FloorArea(), 1000.0);
    EXPECT_LE(cfg.spec.FloorArea(), 9000.0);
    EXPECT_GE(cfg.spec.aps_per_floor, 8);
  }
}

TEST(PresetsTest, MicrosoftFleetDeterministic) {
  const auto a = MicrosoftLikeFleet(5, 42);
  const auto b = MicrosoftLikeFleet(5, 42);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i].spec.num_floors, b[i].spec.num_floors);
    EXPECT_DOUBLE_EQ(a[i].spec.floor_width_m, b[i].spec.floor_width_m);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(PresetsTest, HongKongFleetHasFiveFacilities) {
  const auto fleet = HongKongFleet(7);
  ASSERT_EQ(fleet.size(), 5u);
  // Two towers, a hospital, two malls.
  EXPECT_EQ(fleet[0].spec.name, "hk-office-tower-1");
  EXPECT_EQ(fleet[2].spec.name, "hk-hospital");
  EXPECT_EQ(fleet[4].spec.name, "hk-mall-2");
  for (const BuildingConfig& cfg : fleet) EXPECT_GE(cfg.spec.num_floors, 5);
}

TEST(PresetsTest, MallFloorMatchesFigure1Scale) {
  const BuildingConfig cfg = MallFloorConfig(3);
  EXPECT_EQ(cfg.spec.num_floors, 1);
  EXPECT_EQ(cfg.spec.aps_per_floor, 805);
  EXPECT_EQ(cfg.spec.records_per_floor, 8274);
}

TEST(PresetsTest, CampusBuildingIsThreeStories) {
  const BuildingConfig cfg = CampusBuildingConfig(3);
  EXPECT_EQ(cfg.spec.num_floors, 3);
}

}  // namespace
}  // namespace grafics::synth
