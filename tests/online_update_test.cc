// Tests for batch model updates (Grafics::Update), the deep-copy primitive
// of the ingest pipeline (Grafics::Clone), and the k-NN inference head.
#include <gtest/gtest.h>

#include "core/grafics.h"
#include "core/metrics.h"
#include "synth/presets.h"

namespace grafics::core {
namespace {

GraficsConfig FastConfig() {
  GraficsConfig config;
  config.trainer.samples_per_edge = 60;
  config.online_refine_iterations = 300;
  return config;
}

TEST(OnlineUpdateTest, UpdateBeforeTrainThrows) {
  Grafics system(FastConfig());
  EXPECT_THROW(system.Update({}), Error);
}

TEST(OnlineUpdateTest, UpdateAddsRecordsAndSkipsEmpty) {
  auto config = synth::CampusBuildingConfig(31, 50);
  auto sim = config.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(3);
  dataset.KeepLabelsPerFloor(4, rng);
  Grafics system(FastConfig());
  system.Train(dataset.records());
  const std::size_t before = system.graph().NumRecords();

  std::vector<rf::SignalRecord> batch;
  batch.push_back(sim.MeasureAt({10.0, 10.0, 1.2}, 0));
  batch.push_back(rf::SignalRecord());  // empty: skipped
  batch.push_back(sim.MeasureAt({20.0, 20.0, 5.2}, 1));
  EXPECT_EQ(system.Update(batch), 2u);
  EXPECT_EQ(system.graph().NumRecords(), before + 2);
}

TEST(OnlineUpdateTest, UpdateDoesNotChangeClusters) {
  auto config = synth::CampusBuildingConfig(37, 50);
  auto sim = config.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(5);
  dataset.KeepLabelsPerFloor(4, rng);
  Grafics system(FastConfig());
  system.Train(dataset.records());
  const std::size_t clusters_before = system.clustering().num_clusters();
  system.Update({sim.MeasureAt({5.0, 5.0, 1.2}, 0)});
  EXPECT_EQ(system.clustering().num_clusters(), clusters_before);
}

TEST(OnlineUpdateTest, PredictionStillWorksAfterManyUpdates) {
  auto config = synth::CampusBuildingConfig(41, 50);
  auto sim = config.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(7);
  dataset.KeepLabelsPerFloor(4, rng);
  Grafics system(FastConfig());
  system.Train(dataset.records());

  std::vector<rf::SignalRecord> batch;
  for (int i = 0; i < 30; ++i) {
    batch.push_back(sim.MeasureAt({10.0 + i, 15.0, 1.2}, 0));
  }
  EXPECT_EQ(system.Update(batch), 30u);

  std::size_t correct = 0;
  for (int i = 0; i < 15; ++i) {
    const int floor = i % 3;
    const auto predicted = system.Predict(
        sim.MeasureAt({25.0 + i, 25.0, floor * 4.0 + 1.2}, floor));
    if (predicted && *predicted == floor) ++correct;
  }
  EXPECT_GE(correct, 12u);
}

TEST(CloneTest, CloneIsBitIdenticalAndFullyIndependent) {
  auto config = synth::CampusBuildingConfig(47, 50);
  auto sim = config.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(11);
  auto [train, test] = dataset.TrainTestSplit(0.7, rng);
  train.KeepLabelsPerFloor(4, rng);
  Grafics system(FastConfig());
  system.Train(train.records());

  const Grafics clone = system.Clone();
  const auto original_before = system.PredictBatch(test.records());
  // Same answers from the copy: nothing about the model state drifted.
  const auto cloned = clone.PredictBatch(test.records());
  for (std::size_t i = 0; i < cloned.size(); ++i) {
    EXPECT_EQ(cloned[i], original_before[i]) << i;
  }

  // Mutating a clone must never disturb the source — this is what lets the
  // ingest pipeline fold records on a private copy while the original
  // keeps serving.
  Grafics updated = system.Clone();
  std::vector<rf::SignalRecord> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(sim.MeasureAt({12.0 + i, 14.0, 1.2}, 0));
  }
  EXPECT_EQ(updated.Update(batch), batch.size());
  EXPECT_EQ(updated.graph().NumRecords(),
            system.graph().NumRecords() + batch.size());
  const auto original_after = system.PredictBatch(test.records());
  for (std::size_t i = 0; i < original_after.size(); ++i) {
    EXPECT_EQ(original_after[i], original_before[i]) << i;
  }

  // And the clone behaves exactly like the same Update on the original.
  system.Update(batch);
  const auto updated_predictions = updated.PredictBatch(test.records());
  const auto system_predictions = system.PredictBatch(test.records());
  for (std::size_t i = 0; i < updated_predictions.size(); ++i) {
    EXPECT_EQ(updated_predictions[i], system_predictions[i]) << i;
  }
}

TEST(CloneTest, UntrainedSystemsCloneToo) {
  Grafics system(FastConfig());
  const Grafics clone = system.Clone();
  EXPECT_FALSE(clone.is_trained());
}

TEST(OnlineUpdateTest, KnnHeadMatchesCentroidHeadOnEasyData) {
  auto config = synth::CampusBuildingConfig(43, 60);
  auto sim = config.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(9);
  auto [train, test] = dataset.TrainTestSplit(0.7, rng);
  train.KeepLabelsPerFloor(4, rng);

  GraficsConfig centroid_config = FastConfig();
  GraficsConfig knn_config = FastConfig();
  knn_config.head = InferenceHead::kKnn;
  Grafics centroid_system(centroid_config);
  Grafics knn_system(knn_config);
  centroid_system.Train(train.records());
  knn_system.Train(train.records());

  std::vector<rf::FloorId> truth;
  for (const auto& r : test.records()) truth.push_back(*r.floor());
  const auto centroid_metrics =
      ComputeMetrics(truth, centroid_system.PredictBatch(test.records()));
  const auto knn_metrics =
      ComputeMetrics(truth, knn_system.PredictBatch(test.records()));
  EXPECT_GT(centroid_metrics.micro.f_score, 0.85);
  EXPECT_GT(knn_metrics.micro.f_score, 0.80);
}

}  // namespace
}  // namespace grafics::core
