// Negative-compile probe for the thread-safety gate (acceptance check for
// the annotation layer): this file deliberately reads a GRAFICS_GUARDED_BY
// field without its mutex and MUST fail to compile under
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
// CMake registers it as a ctest with WILL_FAIL (Clang only): the test goes
// red if the gate ever stops catching unguarded accesses — e.g. the
// attribute macros were broken or the warning flags were dropped.
//
// This file is never part of any target's sources; it exists only for that
// inverted test.

#include <cstdint>

#include "common/annotated_sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    const grafics::MutexLock lock(&mutex_);
    ++value_;
  }

  // BUG (intentional): reads value_ without mutex_. The thread-safety
  // analysis must reject this translation unit.
  std::uint64_t UnguardedRead() const { return value_; }

 private:
  mutable grafics::Mutex mutex_;
  std::uint64_t value_ GRAFICS_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return static_cast<int>(counter.UnguardedRead() & 1U);
}
