// Tests for store::ModelStore, the unified persistence API: base + delta
// artifact chains committed through a crash-safe manifest, generation
// addressing (latest and rollback pins), external imports by reference, and
// corruption handling. The compaction protocol (StageCheckpoint /
// CommitStaged under a live journal) is exercised end-to-end in
// ingest_test's crash matrix.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/grafics.h"
#include "store/model_store.h"
#include "synth/presets.h"

namespace grafics::store {
namespace {

core::GraficsConfig FastConfig() {
  core::GraficsConfig config;
  config.trainer.samples_per_edge = 10;
  config.online_refine_iterations = 60;
  return config;
}

/// Trained base model plus fold batches and probe queries.
struct Fixture {
  Fixture() {
    auto preset = synth::CampusBuildingConfig(/*seed=*/4711, 150);
    sim = preset.MakeSimulator();
    rf::Dataset dataset = sim->GenerateDataset();
    Rng rng(13);
    dataset.KeepLabelsPerFloor(4, rng);
    base.Train(dataset.records());
    for (std::size_t i = 0; i < 6; ++i) {
      batch.push_back(
          sim->MeasureAt({5.0 + static_cast<double>(i), 7.0, 1.2}, 0));
      queries.push_back(
          sim->MeasureAt({3.0 + static_cast<double>(i), 20.0, 5.2}, 1));
    }
  }

  std::optional<synth::BuildingSimulator> sim;
  core::Grafics base{FastConfig()};
  std::vector<rf::SignalRecord> batch;
  std::vector<rf::SignalRecord> queries;
};

const Fixture& SharedFixture() {
  static const Fixture fixture;
  return fixture;
}

/// Fresh (emptied) store directory under the test temp root.
std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  if (DIR* handle = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(handle)) {
      const std::string file = entry->d_name;
      if (file == "." || file == "..") continue;
      std::remove((dir + "/" + file).c_str());
    }
    ::closedir(handle);
  }
  return dir;
}

std::vector<std::optional<rf::FloorId>> Answers(
    const core::Grafics& model, const std::vector<rf::SignalRecord>& queries) {
  return model.PredictBatch(queries, {.num_threads = 1});
}

TEST(ModelStoreTest, BasePlusDeltaChainReopensBitIdentical) {
  const Fixture& f = SharedFixture();
  const std::string dir = FreshDir("store_chain");

  core::Grafics folded = f.base.Clone();
  folded.Update(f.batch);
  const auto expected_base = Answers(f.base, f.queries);
  const auto expected_folded = Answers(folded, f.queries);

  StagedArtifact written;
  {
    ModelStore store(dir);
    EXPECT_EQ(store.LatestGeneration("campus"), 0u);
    EXPECT_EQ(
        store.WriteBase("campus", std::make_shared<const core::Grafics>(
                                      f.base.Clone())),
        1u);
    EXPECT_EQ(store.WriteCheckpoint(
                  "campus",
                  std::make_shared<const core::Grafics>(folded.Clone()),
                  &written),
              2u);
  }
  // A fold of a handful of records against a model spanning many chunks
  // must serialize as a delta — O(owned chunks), a small fraction of the
  // full artifact (snapshot_sharing_test pins the ratio at the model
  // layer; here we assert the store actually chose the delta form).
  EXPECT_TRUE(written.is_delta);
  const std::vector<ArtifactInfo> chain = [&] {
    ModelStore store(dir);
    return store.List("campus");
  }();
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_FALSE(chain[0].is_delta);
  EXPECT_TRUE(chain[1].is_delta);
  EXPECT_LT(chain[1].bytes, chain[0].bytes / 4);

  // Fresh store instance = daemon restart: the latest generation is base +
  // delta re-linked chunk by chunk, answering exactly like the live fold;
  // the pinned generation 1 answers exactly like the original base.
  ModelStore reopened(dir);
  EXPECT_EQ(reopened.LatestGeneration("campus"), 2u);
  EXPECT_EQ(Answers(*reopened.Open("campus"), f.queries), expected_folded);
  EXPECT_EQ(Answers(*reopened.Open("campus", 1), f.queries), expected_base);
  EXPECT_THROW(reopened.Open("campus", 3), Error);
  EXPECT_THROW(reopened.Open("no-such-model"), Error);

  const ArtifactCounts counts = reopened.Counts();
  EXPECT_EQ(counts.base_count, 1u);
  EXPECT_EQ(counts.delta_count, 1u);
}

TEST(ModelStoreTest, CheckpointOfAnUnrelatedModelFallsBackToAFullBase) {
  const Fixture& f = SharedFixture();
  const std::string dir = FreshDir("store_unrelated");
  ModelStore store(dir);
  store.WriteBase("campus",
                  std::make_shared<const core::Grafics>(f.base.Clone()));
  // A model that is not a fold-descendant of the retained generation (a
  // fresh Train, different lineage) cannot be expressed as chunk deltas;
  // the store must write a self-contained base, never a broken delta.
  Fixture other;
  StagedArtifact written;
  EXPECT_EQ(store.WriteCheckpoint(
                "campus",
                std::make_shared<const core::Grafics>(other.base.Clone()),
                &written),
            2u);
  EXPECT_FALSE(written.is_delta);
  EXPECT_EQ(Answers(*store.Open("campus"), f.queries),
            Answers(other.base, f.queries));
}

TEST(ModelStoreTest, RollbackDoesNotRetainAndRestartsTheDeltaChain) {
  const Fixture& f = SharedFixture();
  const std::string dir = FreshDir("store_rollback");
  ModelStore store(dir);
  store.WriteBase("campus",
                  std::make_shared<const core::Grafics>(f.base.Clone()));
  core::Grafics folded = f.base.Clone();
  folded.Update(f.batch);
  store.WriteCheckpoint(
      "campus", std::make_shared<const core::Grafics>(folded.Clone()));

  // Roll back to generation 1, then checkpoint what we got: the rollback
  // snapshot is not a fold-descendant of the latest generation, so the
  // next checkpoint must start a fresh base instead of a delta against a
  // model the operator just rolled away from.
  const std::shared_ptr<const core::Grafics> rolled_back =
      store.Open("campus", 1);
  StagedArtifact written;
  EXPECT_EQ(store.WriteCheckpoint("campus", rolled_back, &written), 3u);
  EXPECT_FALSE(written.is_delta);
  EXPECT_EQ(Answers(*store.Open("campus"), f.queries),
            Answers(f.base, f.queries));
}

TEST(ModelStoreTest, ImportBaseRecordsByReferenceAndDedupesRestarts) {
  const Fixture& f = SharedFixture();
  const std::string dir = FreshDir("store_import");
  const std::string artifact = testing::TempDir() + "store_import_model.bin";
  f.base.SaveModel(artifact);

  ModelStore store(dir);
  EXPECT_EQ(store.ImportBase("campus", artifact), 1u);
  // A daemon restart re-imports the same path; the chain must not grow.
  EXPECT_EQ(store.ImportBase("campus", artifact), 1u);
  const std::vector<ArtifactInfo> chain = store.List("campus");
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_TRUE(chain[0].external);
  EXPECT_EQ(chain[0].file, artifact);
  EXPECT_EQ(Answers(*store.Open("campus"), f.queries),
            Answers(f.base, f.queries));

  // A retrained artifact under a different path is a genuine new import.
  const std::string retrained = testing::TempDir() + "store_import_v2.bin";
  f.base.SaveModel(retrained);
  EXPECT_EQ(store.ImportBase("campus", retrained), 2u);
}

TEST(ModelStoreTest, ManifestCommitSurvivesACrashBeforeTheRename) {
  const Fixture& f = SharedFixture();
  const std::string dir = FreshDir("store_staged");
  ModelStore store(dir);
  store.WriteBase("campus",
                  std::make_shared<const core::Grafics>(f.base.Clone()));
  core::Grafics folded = f.base.Clone();
  folded.Update(f.batch);
  // Stage without committing — the crash-between window of a compaction.
  const StagedArtifact staged = store.StageCheckpoint(
      "campus", std::make_shared<const core::Grafics>(folded.Clone()));
  EXPECT_EQ(staged.generation, 2u);

  // Restart: the staged artifact file exists on disk, but the manifest
  // never referenced it, so the store still serves generation 1 exactly.
  ModelStore reopened(dir);
  EXPECT_EQ(reopened.LatestGeneration("campus"), 1u);
  EXPECT_EQ(Answers(*reopened.Open("campus"), f.queries),
            Answers(f.base, f.queries));
}

TEST(ModelStoreTest, CorruptManifestIsAnErrorNotAWrongModel) {
  const Fixture& f = SharedFixture();
  const std::string dir = FreshDir("store_corrupt");
  std::string manifest_path;
  {
    ModelStore store(dir);
    store.WriteBase("campus",
                    std::make_shared<const core::Grafics>(f.base.Clone()));
    manifest_path = dir + "/" + ModelStore::EncodedFileStem("campus") +
                    ".manifest";
  }
  {
    // Flip a byte in the manifest body: the CRC no longer matches.
    std::fstream file(manifest_path,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekp(10);
    file.put('\xFF');
  }
  ModelStore reopened(dir);
  EXPECT_THROW(reopened.Open("campus"), Error);
  // ListModels is a directory sweep; a corrupt manifest is skipped, not
  // fatal for the other models.
  EXPECT_TRUE(reopened.ListModels().empty());
}

TEST(ModelStoreTest, EncodedFileStemNeverEscapesTheStoreDirectory) {
  EXPECT_EQ(ModelStore::EncodedFileStem("campus"), "campus");
  EXPECT_EQ(ModelStore::EncodedFileStem("hk.tower_3-b"), "hk.tower_3-b");
  EXPECT_EQ(ModelStore::EncodedFileStem("../x"), "..%2Fx");
  EXPECT_EQ(ModelStore::EncodedFileStem("a/b"), "a%2Fb");
}

// Writers checkpointing two models while readers hammer Open/List/Counts on
// one ModelStore instance. The store serializes everything behind one
// annotated mutex, so the properties are simple: no torn chain (every
// generation 1..latest opens), reader snapshots are internally consistent,
// and the race is visible to TSan (this suite runs under `ctest -L store`
// in the TSan CI job).
TEST(ModelStoreTest, ConcurrentCheckpointsAndReadsKeepEveryChainConsistent) {
  const Fixture& f = SharedFixture();
  const std::string dir = FreshDir("store_concurrent");
  ModelStore store(dir);

  core::Grafics folded = f.base.Clone();
  folded.Update(f.batch);
  const auto base_snapshot =
      std::make_shared<const core::Grafics>(f.base.Clone());
  const auto folded_snapshot =
      std::make_shared<const core::Grafics>(folded.Clone());

  constexpr int kCheckpointsPerModel = 6;
  const std::vector<std::string> models = {"campus", "annex"};
  for (const std::string& model : models) {
    store.WriteBase(model, base_snapshot);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // One writer per model: alternating fold-descendant and unrelated
  // snapshots, so the store flips between delta and full-base commits
  // while the readers run.
  threads.reserve(models.size() + 2);
  for (const std::string& model : models) {
    threads.emplace_back([&, model] {
      for (int i = 0; i < kCheckpointsPerModel; ++i) {
        store.WriteCheckpoint(model,
                              i % 2 == 0 ? folded_snapshot : base_snapshot);
      }
    });
  }
  for (int reader = 0; reader < 2; ++reader) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (const std::string& model : models) {
          // Latest may advance between these calls; each individual
          // answer must still be coherent.
          const std::uint64_t latest = store.LatestGeneration(model);
          ASSERT_GE(latest, 1u);
          ASSERT_GE(store.List(model).size(), latest);
          ASSERT_NE(store.Open(model), nullptr);
        }
        const ArtifactCounts counts = store.Counts();
        ASSERT_GE(counts.base_count, models.size());
      }
    });
  }
  for (std::size_t i = 0; i < models.size(); ++i) {
    threads[i].join();
  }
  stop.store(true, std::memory_order_release);
  for (std::size_t i = models.size(); i < threads.size(); ++i) {
    threads[i].join();
  }

  // Quiesced: every generation of every chain opens, and the full chain
  // length is base + all checkpoints.
  for (const std::string& model : models) {
    const std::uint64_t latest = store.LatestGeneration(model);
    EXPECT_EQ(latest, 1u + kCheckpointsPerModel);
    for (std::uint64_t generation = 1; generation <= latest; ++generation) {
      EXPECT_NE(store.Open(model, generation), nullptr)
          << model << " generation " << generation;
    }
  }
}

}  // namespace
}  // namespace grafics::store
