#include "rf/signal_record.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace grafics::rf {
namespace {

SignalRecord MakeRecord(std::initializer_list<std::pair<int, double>> obs,
                        std::optional<FloorId> floor = std::nullopt) {
  SignalRecord r;
  for (const auto& [mac, rssi] : obs) {
    r.Add(MacAddress(static_cast<std::uint64_t>(mac)), rssi);
  }
  r.set_floor(floor);
  return r;
}

TEST(SignalRecordTest, EmptyByDefault) {
  SignalRecord r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.is_labeled());
}

TEST(SignalRecordTest, AddAndQuery) {
  const SignalRecord r = MakeRecord({{1, -60.0}, {2, -70.0}});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(MacAddress(1)));
  EXPECT_FALSE(r.Contains(MacAddress(3)));
  EXPECT_DOUBLE_EQ(*r.RssiFor(MacAddress(2)), -70.0);
  EXPECT_FALSE(r.RssiFor(MacAddress(9)).has_value());
}

TEST(SignalRecordTest, DuplicateMacThrows) {
  SignalRecord r;
  r.Add(MacAddress(1), -60.0);
  EXPECT_THROW(r.Add(MacAddress(1), -65.0), Error);
}

TEST(SignalRecordTest, ConstructorRejectsDuplicates) {
  std::vector<Observation> obs = {{MacAddress(1), -60.0},
                                  {MacAddress(1), -61.0}};
  EXPECT_THROW(SignalRecord record(std::move(obs)), Error);
}

TEST(SignalRecordTest, FloorLabel) {
  SignalRecord r = MakeRecord({{1, -50.0}}, 3);
  EXPECT_TRUE(r.is_labeled());
  EXPECT_EQ(*r.floor(), 3);
  r.set_floor(std::nullopt);
  EXPECT_FALSE(r.is_labeled());
}

TEST(SignalRecordTest, NegativeFloorsAllowed) {
  const SignalRecord r = MakeRecord({{1, -50.0}}, -2);
  EXPECT_EQ(*r.floor(), -2);
}

TEST(SignalRecordTest, OverlapRatioDisjoint) {
  const SignalRecord a = MakeRecord({{1, -60.0}, {2, -60.0}});
  const SignalRecord b = MakeRecord({{3, -60.0}, {4, -60.0}});
  EXPECT_DOUBLE_EQ(a.OverlapRatio(b), 0.0);
}

TEST(SignalRecordTest, OverlapRatioIdentical) {
  const SignalRecord a = MakeRecord({{1, -60.0}, {2, -61.0}});
  const SignalRecord b = MakeRecord({{2, -75.0}, {1, -55.0}});  // RSS ignored
  EXPECT_DOUBLE_EQ(a.OverlapRatio(b), 1.0);
}

TEST(SignalRecordTest, OverlapRatioPartial) {
  const SignalRecord a = MakeRecord({{1, -60.0}, {2, -60.0}, {3, -60.0}});
  const SignalRecord b = MakeRecord({{3, -60.0}, {4, -60.0}});
  // intersection {3}, union {1,2,3,4}.
  EXPECT_DOUBLE_EQ(a.OverlapRatio(b), 0.25);
  EXPECT_DOUBLE_EQ(b.OverlapRatio(a), 0.25);  // symmetric
}

TEST(SignalRecordTest, OverlapRatioBothEmpty) {
  EXPECT_DOUBLE_EQ(SignalRecord().OverlapRatio(SignalRecord()), 0.0);
}

TEST(SignalRecordTest, OverlapRatioOneEmpty) {
  const SignalRecord a = MakeRecord({{1, -60.0}});
  EXPECT_DOUBLE_EQ(a.OverlapRatio(SignalRecord()), 0.0);
}

TEST(SignalRecordTest, RemoveObservationsIf) {
  SignalRecord r = MakeRecord({{1, -60.0}, {2, -80.0}, {3, -90.0}});
  const std::size_t removed = r.RemoveObservationsIf(
      [](const Observation& o) { return o.rssi_dbm < -75.0; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(MacAddress(1)));
}

}  // namespace
}  // namespace grafics::rf
