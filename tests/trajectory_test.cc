#include <gtest/gtest.h>

#include "common/error.h"
#include "core/grafics.h"
#include "synth/generator.h"
#include "synth/presets.h"

namespace grafics::synth {
namespace {

BuildingSimulator MakeSim(std::uint64_t seed = 1) {
  BuildingSpec spec;
  spec.num_floors = 4;
  spec.aps_per_floor = 25;
  spec.records_per_floor = 40;
  return BuildingSimulator(spec, PathLossParams{}, CrowdsourceParams{}, seed);
}

TEST(TrajectoryTest, ProducesRequestedScanCount) {
  BuildingSimulator sim = MakeSim();
  const auto trajectory = sim.GenerateTrajectory(1, 25);
  EXPECT_EQ(trajectory.size(), 25u);
  for (const auto& scan : trajectory) {
    EXPECT_EQ(*scan.floor(), 1);
    EXPECT_FALSE(scan.empty());
  }
}

TEST(TrajectoryTest, ConsecutiveScansMoreSimilarThanRandomPairs) {
  BuildingSimulator sim = MakeSim(5);
  const auto trajectory = sim.GenerateTrajectory(0, 40, 2.0);
  double consecutive = 0.0;
  for (std::size_t i = 0; i + 1 < trajectory.size(); ++i) {
    consecutive += trajectory[i].OverlapRatio(trajectory[i + 1]);
  }
  consecutive /= static_cast<double>(trajectory.size() - 1);
  double distant = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i + 20 < trajectory.size(); ++i) {
    distant += trajectory[i].OverlapRatio(trajectory[i + 20]);
    ++count;
  }
  distant /= static_cast<double>(count);
  EXPECT_GT(consecutive, distant);
}

TEST(TrajectoryTest, Validation) {
  BuildingSimulator sim = MakeSim();
  EXPECT_THROW(sim.GenerateTrajectory(4, 10), Error);
  EXPECT_THROW(sim.GenerateTrajectory(-1, 10), Error);
  EXPECT_THROW(sim.GenerateTrajectory(0, 10, 0.0), Error);
}

TEST(TrajectoryTest, MultiFloorCoversAllFloorsInOrder) {
  BuildingSimulator sim = MakeSim(7);
  const auto trajectory = sim.GenerateMultiFloorTrajectory(0, 3, 5);
  ASSERT_EQ(trajectory.size(), 20u);
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    EXPECT_EQ(*trajectory[i].floor(), static_cast<int>(i / 5));
  }
}

TEST(TrajectoryTest, MultiFloorDownwards) {
  BuildingSimulator sim = MakeSim(9);
  const auto trajectory = sim.GenerateMultiFloorTrajectory(2, 0, 3);
  ASSERT_EQ(trajectory.size(), 9u);
  EXPECT_EQ(*trajectory.front().floor(), 2);
  EXPECT_EQ(*trajectory.back().floor(), 0);
}

TEST(TrajectoryTest, GraficsTracksMultiFloorTrajectory) {
  // End-to-end: train on sporadic crowdsourced data, then follow a user
  // riding from the ground floor to the top, scan by scan.
  auto config = CampusBuildingConfig(77, 60);
  auto sim = config.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(3);
  dataset.KeepLabelsPerFloor(4, rng);
  core::GraficsConfig grafics_config;
  grafics_config.trainer.samples_per_edge = 60;
  grafics_config.online_refine_iterations = 300;
  core::Grafics system(grafics_config);
  system.Train(dataset.records());

  const auto trajectory = sim.GenerateMultiFloorTrajectory(0, 2, 8);
  std::size_t correct = 0;
  for (const auto& scan : trajectory) {
    const auto predicted = system.Predict(scan);
    if (predicted && *predicted == *scan.floor()) ++correct;
  }
  EXPECT_GE(correct, trajectory.size() * 3 / 4);
}

}  // namespace
}  // namespace grafics::synth
