// Round-trip tests for the binary model-persistence path.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "cluster/centroid_classifier.h"
#include "common/serialize.h"
#include "core/grafics.h"
#include "embed/embedding_store.h"
#include "graph/bipartite_graph.h"
#include "synth/presets.h"

namespace grafics {
namespace {

TEST(SerializeTest, PrimitivesRoundTrip) {
  std::stringstream stream;
  WriteU8(stream, 200);
  WriteU32(stream, 123456789u);
  WriteU64(stream, 0xDEADBEEFCAFEULL);
  WriteI32(stream, -42);
  WriteDouble(stream, -3.14159);
  WriteString(stream, "hello, world");
  EXPECT_EQ(ReadU8(stream), 200);
  EXPECT_EQ(ReadU32(stream), 123456789u);
  EXPECT_EQ(ReadU64(stream), 0xDEADBEEFCAFEULL);
  EXPECT_EQ(ReadI32(stream), -42);
  EXPECT_DOUBLE_EQ(ReadDouble(stream), -3.14159);
  EXPECT_EQ(ReadString(stream), "hello, world");
}

TEST(SerializeTest, MatrixRoundTrip) {
  Rng rng(1);
  const Matrix m = Matrix::RandomNormal(7, 5, rng, 2.0);
  std::stringstream stream;
  WriteMatrix(stream, m);
  EXPECT_EQ(ReadMatrix(stream), m);
}

TEST(SerializeTest, TruncatedStreamThrows) {
  std::stringstream stream;
  WriteU64(stream, 99);
  ReadU32(stream);
  EXPECT_THROW(ReadU64(stream), Error);
}

TEST(SerializeTest, HeaderMismatchThrows) {
  std::stringstream stream;
  WriteHeader(stream, "ABCD", 1);
  EXPECT_THROW(CheckHeader(stream, "ABCE", 1), Error);
  std::stringstream stream2;
  WriteHeader(stream2, "ABCD", 2);
  EXPECT_THROW(CheckHeader(stream2, "ABCD", 1), Error);
}

TEST(SerializeTest, GraphRoundTrip) {
  rf::SignalRecord r1;
  r1.Add(rf::MacAddress(1), -66.0);
  r1.Add(rf::MacAddress(2), -60.0);
  rf::SignalRecord r2;
  r2.Add(rf::MacAddress(2), -70.0);
  r2.Add(rf::MacAddress(3), -70.0);
  auto g = graph::BipartiteGraph::FromRecords({r1, r2},
                                              graph::OffsetWeight(120.0));
  std::stringstream stream;
  g.Save(stream);
  const auto loaded = graph::BipartiteGraph::Load(stream);
  EXPECT_EQ(loaded.NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded.NumEdges(), g.NumEdges());
  EXPECT_EQ(loaded.NumMacs(), g.NumMacs());
  EXPECT_DOUBLE_EQ(loaded.TotalEdgeWeight(), g.TotalEdgeWeight());
  EXPECT_EQ(loaded.RecordNode(1), g.RecordNode(1));
  EXPECT_EQ(*loaded.FindMacNode(rf::MacAddress(2)),
            *g.FindMacNode(rf::MacAddress(2)));
}

TEST(SerializeTest, GraphWithRemovedMacRoundTrips) {
  rf::SignalRecord r1;
  r1.Add(rf::MacAddress(1), -66.0);
  r1.Add(rf::MacAddress(2), -60.0);
  auto g = graph::BipartiteGraph::FromRecords({r1},
                                              graph::OffsetWeight(120.0));
  ASSERT_TRUE(g.RemoveMacNode(rf::MacAddress(2)));
  std::stringstream stream;
  g.Save(stream);
  const auto loaded = graph::BipartiteGraph::Load(stream);
  EXPECT_EQ(loaded.NumMacs(), 1u);
  EXPECT_FALSE(loaded.FindMacNode(rf::MacAddress(2)).has_value());
  EXPECT_EQ(loaded.NumEdges(), 1u);
  // Retired ids preserved so the embedding store stays aligned.
  EXPECT_EQ(loaded.NumNodes(), g.NumNodes());
}

TEST(SerializeTest, EmbeddingStoreRoundTrip) {
  Rng rng(2);
  embed::EmbeddingStore store(6, 4, rng);
  store.Ego(3)[1] = 0.33;
  store.Context(5)[0] = -0.2;
  std::stringstream stream;
  store.Save(stream);
  EXPECT_EQ(embed::EmbeddingStore::Load(stream), store);
}

TEST(SerializeTest, CentroidClassifierRoundTrip) {
  Matrix centroids(2, 3);
  centroids(0, 0) = 1.0;
  centroids(1, 2) = -2.0;
  const cluster::CentroidClassifier classifier(centroids, {4, -1});
  std::stringstream stream;
  classifier.Save(stream);
  EXPECT_EQ(cluster::CentroidClassifier::Load(stream), classifier);
}

TEST(SerializeTest, GraficsModelRoundTripPredictsIdentically) {
  auto config = synth::CampusBuildingConfig(99, 60);
  auto sim = config.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(7);
  dataset.KeepLabelsPerFloor(4, rng);

  core::GraficsConfig grafics_config;
  grafics_config.trainer.samples_per_edge = 60;
  core::Grafics original(grafics_config);
  original.Train(dataset.records());

  const std::string path =
      (std::filesystem::temp_directory_path() / "grafics_model_test.bin")
          .string();
  original.SaveModel(path);
  core::Grafics restored = core::Grafics::LoadModel(path);
  std::filesystem::remove(path);

  EXPECT_TRUE(restored.is_trained());
  EXPECT_EQ(restored.graph().NumNodes(), original.graph().NumNodes());
  EXPECT_EQ(restored.clustering().num_clusters(),
            original.clustering().num_clusters());

  // Both systems predict identical floors for fresh probes.
  for (int i = 0; i < 10; ++i) {
    const int floor = i % 3;
    const rf::SignalRecord probe =
        sim.MeasureAt({15.0 + i, 20.0, floor * 4.0 + 1.2}, floor);
    EXPECT_EQ(original.Predict(probe), restored.Predict(probe)) << i;
  }
}

TEST(SerializeTest, SaveUntrainedThrows) {
  core::Grafics system;
  EXPECT_THROW(system.SaveModel("/tmp/should_not_exist.bin"), Error);
}

TEST(SerializeTest, SaveCustomWeightThrows) {
  core::GraficsConfig config;
  config.custom_weight = graph::BinaryWeight();
  config.trainer.samples_per_edge = 20;
  core::Grafics system(config);
  rf::SignalRecord r1;
  r1.Add(rf::MacAddress(1), -50.0);
  r1.set_floor(0);
  rf::SignalRecord r2;
  r2.Add(rf::MacAddress(1), -60.0);
  system.Train({r1, r2});
  EXPECT_THROW(system.SaveModel("/tmp/should_not_exist.bin"), Error);
}

TEST(SerializeTest, LoadMissingFileThrows) {
  EXPECT_THROW(core::Grafics::LoadModel("/nonexistent/model.bin"), Error);
}

}  // namespace
}  // namespace grafics
