// Tests for the named model registry: load/unload/list lifecycle, default
// resolution, per-model generations and stats, routing submits to the right
// per-model batcher, and hot-reload from disk that leaves other models'
// queues untouched.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/grafics.h"
#include "serve/model_registry.h"
#include "synth/presets.h"

namespace grafics::serve {
namespace {

using namespace std::chrono_literals;

core::GraficsConfig FastConfig(std::uint64_t trainer_seed) {
  core::GraficsConfig config;
  config.trainer.samples_per_edge = 60;
  config.trainer.seed = trainer_seed;
  config.online_refine_iterations = 300;
  return config;
}

struct Fixture {
  std::shared_ptr<const core::Grafics> model;
  std::vector<rf::SignalRecord> queries;
  std::vector<std::optional<rf::FloorId>> reference;

  explicit Fixture(std::uint64_t trainer_seed) {
    auto config = synth::CampusBuildingConfig(/*seed=*/53, 60);
    auto sim = config.MakeSimulator();
    rf::Dataset dataset = sim.GenerateDataset();
    Rng rng(54);
    auto [train, test] = dataset.TrainTestSplit(0.7, rng);
    train.KeepLabelsPerFloor(4, rng);
    core::Grafics system(FastConfig(trainer_seed));
    system.Train(train.records());
    queries.assign(test.records().begin(), test.records().end());
    reference = system.PredictBatch(queries, {.num_threads = 1});
    model = std::make_shared<const core::Grafics>(std::move(system));
  }
};

const Fixture& ModelA() {
  static const Fixture fixture(1);
  return fixture;
}

const Fixture& ModelB() {
  static const Fixture fixture(2);
  return fixture;
}

BatcherConfig QuickBatcherConfig() {
  BatcherConfig config;
  config.max_batch_size = 8;
  config.max_delay = 2ms;
  return config;
}

std::optional<rf::FloorId> GetWithin(
    std::future<std::optional<rf::FloorId>>&& future) {
  if (future.wait_for(30s) != std::future_status::ready) {
    ADD_FAILURE() << "registry future not ready within 30s";
    return std::nullopt;
  }
  return future.get();
}

TEST(ModelRegistryTest, LoadListAndDefaultLifecycle) {
  ModelRegistry registry(QuickBatcherConfig());
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.default_model(), "");
  registry.Load("alpha", ModelA().model);
  registry.Load("beta", ModelB().model);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.default_model(), "alpha");  // first loaded wins
  EXPECT_TRUE(registry.Has("alpha"));
  EXPECT_FALSE(registry.Has("gamma"));

  const std::vector<ModelInfo> models = registry.List();
  ASSERT_EQ(models.size(), 2u);
  EXPECT_EQ(models[0].name, "alpha");
  EXPECT_EQ(models[0].generation, 1u);
  EXPECT_FALSE(models[0].reloadable);
  EXPECT_EQ(models[1].name, "beta");

  registry.SetDefaultModel("beta");
  EXPECT_EQ(registry.default_model(), "beta");
  EXPECT_THROW(registry.SetDefaultModel("gamma"), Error);
}

TEST(ModelRegistryTest, ValidatesNamesAndModels) {
  ModelRegistry registry(QuickBatcherConfig());
  EXPECT_THROW(registry.Load("", ModelA().model), Error);
  EXPECT_THROW(registry.Load("has space", ModelA().model), Error);
  EXPECT_THROW(registry.Load("has=equals", ModelA().model), Error);
  EXPECT_THROW(registry.Load(std::string(kMaxModelNameBytes + 1, 'm'),
                             ModelA().model),
               Error);
  EXPECT_THROW(registry.Load("alpha", nullptr), Error);
  EXPECT_THROW(
      registry.Load("alpha", std::make_shared<const core::Grafics>()),
      Error);
  EXPECT_EQ(registry.size(), 0u);
  // Non-ASCII bytes are legal (only whitespace/control/'=' are not).
  registry.Load("m\xC3\xBCnchen", ModelA().model);
  EXPECT_TRUE(registry.Has("m\xC3\xBCnchen"));
}

TEST(ModelRegistryTest, SubmitRoutesByNameAndResolvesDefault) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  ModelRegistry registry(QuickBatcherConfig());
  registry.Load("alpha", a.model);
  registry.Load("beta", b.model);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(GetWithin(registry.Submit("alpha", a.queries[i])),
              a.reference[i])
        << i;
    EXPECT_EQ(GetWithin(registry.Submit("beta", b.queries[i])),
              b.reference[i])
        << i;
    EXPECT_EQ(GetWithin(registry.Submit("", a.queries[i])), a.reference[i])
        << i;
  }
  EXPECT_THROW(registry.Submit("gamma", a.queries[0]), Error);

  // SubmitBatch: one name resolution, per-record futures in order.
  auto futures = registry.SubmitBatch(
      "beta", {b.queries.begin(), b.queries.begin() + 4});
  ASSERT_EQ(futures.size(), 4u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(GetWithin(std::move(futures[i])), b.reference[i]) << i;
  }
  EXPECT_THROW(registry.SubmitBatch("gamma", {a.queries[0]}), Error);

  const std::vector<ModelStats> stats = registry.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "alpha");
  EXPECT_EQ(stats[0].requests, 12u);  // named + default submits
  EXPECT_GE(stats[0].batches, 1u);
  EXPECT_EQ(stats[1].name, "beta");
  EXPECT_EQ(stats[1].requests, 10u);  // singles + the batch of 4
}

TEST(ModelRegistryTest, ReloadingLoadBumpsGenerationAndSwapsSnapshot) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  ModelRegistry registry(QuickBatcherConfig());
  registry.Load("alpha", a.model);
  EXPECT_EQ(registry.generation("alpha"), 1u);
  EXPECT_EQ(registry.Snapshot("alpha"), a.model);

  registry.Load("alpha", b.model);
  EXPECT_EQ(registry.generation("alpha"), 2u);
  EXPECT_EQ(registry.Snapshot(), b.model);  // empty name = default
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(GetWithin(registry.Submit("alpha", b.queries[0])),
            b.reference[0]);
}

TEST(ModelRegistryTest, UnloadDrainsAndRemovesButProtectsDefault) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  ModelRegistry registry(QuickBatcherConfig());
  registry.Load("alpha", a.model);
  registry.Load("beta", b.model);

  auto pending = registry.Submit("beta", b.queries[0]);
  registry.Unload("beta");
  // The unload drained the queue: the future still resolved correctly.
  EXPECT_EQ(GetWithin(std::move(pending)), b.reference[0]);
  EXPECT_FALSE(registry.Has("beta"));
  EXPECT_THROW(registry.Submit("beta", b.queries[0]), Error);
  EXPECT_THROW(registry.Unload("beta"), Error);
  EXPECT_THROW(registry.Unload("alpha"), Error);  // the default is protected
  EXPECT_EQ(GetWithin(registry.Submit("alpha", a.queries[0])),
            a.reference[0]);
}

TEST(ModelRegistryTest, ReloadFromDiskSwapsOnlyTheNamedModel) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  const std::string path =
      testing::TempDir() + "model_registry_test_model.bin";
  a.model->SaveModel(path);
  ModelRegistry registry(QuickBatcherConfig());
  registry.LoadFromDisk("alpha", path);
  registry.Load("beta", b.model);
  EXPECT_TRUE(registry.List()[0].reloadable);
  EXPECT_FALSE(registry.List()[1].reloadable);
  EXPECT_EQ(GetWithin(registry.Submit("alpha", a.queries[0])),
            a.reference[0]);

  // Swap the artifact on disk, then reload by name: alpha serves model B's
  // answers, beta's snapshot and generation stay untouched.
  b.model->SaveModel(path);
  EXPECT_EQ(registry.ReloadFromDisk("alpha"), 2u);
  EXPECT_EQ(registry.generation("alpha"), 2u);
  EXPECT_EQ(registry.generation("beta"), 1u);
  EXPECT_EQ(registry.Snapshot("beta"), b.model);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(GetWithin(registry.Submit("alpha", b.queries[i])),
              b.reference[i])
        << i;
  }
  EXPECT_THROW(registry.ReloadFromDisk("beta"), Error);  // no path recorded
  EXPECT_THROW(registry.ReloadFromDisk("gamma"), Error);
}

TEST(ModelRegistryTest, StopDrainsEveryModelAndRejectsFurtherWork) {
  const Fixture& a = ModelA();
  ModelRegistry registry(QuickBatcherConfig());
  registry.Load("alpha", a.model);
  auto pending = registry.Submit("alpha", a.queries[0]);
  registry.Stop();
  EXPECT_EQ(GetWithin(std::move(pending)), a.reference[0]);
  EXPECT_THROW(registry.Submit("alpha", a.queries[0]), Error);
  EXPECT_THROW(registry.Load("beta", ModelB().model), Error);
  EXPECT_THROW(registry.ReloadFromDisk("alpha"), Error);
  // Stats stay readable for the shutdown report.
  ASSERT_EQ(registry.Stats().size(), 1u);
  EXPECT_EQ(registry.Stats()[0].requests, 1u);
}

}  // namespace
}  // namespace grafics::serve
