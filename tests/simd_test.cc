// Vector-kernel layer tests: scalar-vs-SIMD parity across awkward sizes and
// alignments, NaN/inf propagation, backend selection (GRAFICS_SIMD /
// PinBackend), and the scalar bit-identity anchor — a seeded RefineNewNodes
// run whose golden values were captured from the pre-SIMD kernels.
//
// Suite order matters and is encoded in declaration order: SimdEnvTest runs
// first (it observes the process-wide dispatch before anything pins it),
// the parity suites use KernelsFor() tables directly (dispatch-independent),
// and SimdPinTest/SimdGoldenTest pin backends last.
#include "common/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "embed/embedding_store.h"
#include "embed/trainer.h"
#include "graph/bipartite_graph.h"
#include "graph/weight_function.h"
#include "rf/signal_record.h"

namespace grafics {
namespace {

std::vector<simd::Backend> AvailableSimdBackends() {
  std::vector<simd::Backend> backends;
  for (const simd::Backend b : {simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::KernelsFor(b) != nullptr) backends.push_back(b);
  }
  return backends;
}

std::vector<double> RandomVector(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(-2.0, 2.0);
  return v;
}

// The ctest registration simd_test_env_scalar re-runs this suite with
// GRAFICS_SIMD=scalar in the environment; under that registration the very
// first dispatch resolution must honor the variable. Without the variable
// the test only asserts the auto-detected backend is actually runnable.
TEST(SimdEnvTest, EnvironmentSelectsBackend) {
  const char* env = std::getenv("GRAFICS_SIMD");
  const simd::Backend active = simd::ActiveBackend();
  if (env != nullptr && env[0] != '\0') {
    const simd::Backend requested = simd::ParseBackendName(env);
    if (simd::KernelsFor(requested) != nullptr) {
      EXPECT_EQ(active, requested);
    } else {
      EXPECT_EQ(active, simd::Backend::kScalar);
    }
  } else {
    EXPECT_NE(simd::KernelsFor(active), nullptr);
  }
}

TEST(SimdBackendTest, NamesRoundTrip) {
  EXPECT_STREQ(simd::BackendName(simd::Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::BackendName(simd::Backend::kAvx2), "avx2");
  EXPECT_STREQ(simd::BackendName(simd::Backend::kNeon), "neon");
  EXPECT_EQ(simd::ParseBackendName("scalar"), simd::Backend::kScalar);
  EXPECT_EQ(simd::ParseBackendName("avx2"), simd::Backend::kAvx2);
  EXPECT_EQ(simd::ParseBackendName("neon"), simd::Backend::kNeon);
  EXPECT_THROW(simd::ParseBackendName("sse9"), Error);
  EXPECT_THROW(simd::ParseBackendName(""), Error);
  EXPECT_THROW(simd::ParseBackendName("SCALAR"), Error);
}

TEST(SimdBackendTest, ScalarAlwaysAvailable) {
  ASSERT_NE(simd::KernelsFor(simd::Backend::kScalar), nullptr);
}

// Dims 1..67 cover every vector-width remainder (0..3 for AVX2's 4-wide,
// 0..1 for NEON's 2-wide) plus empty-tail and tail-only shapes.
TEST(SimdParityTest, DotAndDistanceWithinRelativeTolerance) {
  const simd::Kernels* scalar = simd::KernelsFor(simd::Backend::kScalar);
  Rng rng(42);
  for (const simd::Backend backend : AvailableSimdBackends()) {
    const simd::Kernels* kernels = simd::KernelsFor(backend);
    for (std::size_t n = 1; n <= 67; ++n) {
      const std::vector<double> a = RandomVector(n, rng);
      const std::vector<double> b = RandomVector(n, rng);
      const double want_dot = scalar->dot(a.data(), b.data(), n);
      const double got_dot = kernels->dot(a.data(), b.data(), n);
      EXPECT_NEAR(got_dot, want_dot, 1e-12 * std::abs(want_dot) + 1e-15)
          << simd::BackendName(backend) << " dot n=" << n;
      const double want_d =
          scalar->squared_l2_distance(a.data(), b.data(), n);
      const double got_d = kernels->squared_l2_distance(a.data(), b.data(), n);
      EXPECT_NEAR(got_d, want_d, 1e-12 * want_d + 1e-15)
          << simd::BackendName(backend) << " sqdist n=" << n;
    }
  }
}

// Axpy has no reduction: every backend performs the same two roundings per
// element, so the guarantee is exact equality, not a tolerance.
TEST(SimdParityTest, AxpyBitIdenticalAcrossBackends) {
  Rng rng(43);
  const simd::Kernels* scalar = simd::KernelsFor(simd::Backend::kScalar);
  for (const simd::Backend backend : AvailableSimdBackends()) {
    const simd::Kernels* kernels = simd::KernelsFor(backend);
    for (std::size_t n = 1; n <= 67; ++n) {
      const std::vector<double> x = RandomVector(n, rng);
      std::vector<double> y_scalar = RandomVector(n, rng);
      std::vector<double> y_simd = y_scalar;
      const double alpha = rng.Uniform(-3.0, 3.0);
      scalar->axpy(alpha, x.data(), y_scalar.data(), n);
      kernels->axpy(alpha, x.data(), y_simd.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(y_simd[i], y_scalar[i])
            << simd::BackendName(backend) << " axpy n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdParityTest, ManyKernelsMatchPerRowScalar) {
  Rng rng(44);
  const simd::Kernels* scalar = simd::KernelsFor(simd::Backend::kScalar);
  const std::size_t rows = 9;
  for (const simd::Backend backend : AvailableSimdBackends()) {
    const simd::Kernels* kernels = simd::KernelsFor(backend);
    for (const std::size_t cols : {1ul, 2ul, 7ul, 16ul, 33ul}) {
      const std::vector<double> query = RandomVector(cols, rng);
      const std::vector<double> block = RandomVector(rows * cols, rng);
      std::vector<double> got(rows), want(rows);
      kernels->dot_many(query.data(), block.data(), rows, cols, got.data());
      for (std::size_t r = 0; r < rows; ++r) {
        want[r] = scalar->dot(query.data(), block.data() + r * cols, cols);
        EXPECT_NEAR(got[r], want[r], 1e-12 * std::abs(want[r]) + 1e-15)
            << simd::BackendName(backend) << " dot_many cols=" << cols;
      }
      kernels->squared_l2_distance_many(query.data(), block.data(), rows,
                                        cols, got.data());
      for (std::size_t r = 0; r < rows; ++r) {
        want[r] = scalar->squared_l2_distance(
            query.data(), block.data() + r * cols, cols);
        EXPECT_NEAR(got[r], want[r], 1e-12 * want[r] + 1e-15)
            << simd::BackendName(backend) << " sqdist_many cols=" << cols;
      }
    }
  }
}

// The kernels take raw pointers at arbitrary offsets (Matrix rows with odd
// cols, sub-spans): exercise deliberately unaligned starts — every SIMD
// load must be an unaligned load.
TEST(SimdParityTest, UnalignedRowOffsets) {
  Rng rng(45);
  const simd::Kernels* scalar = simd::KernelsFor(simd::Backend::kScalar);
  const std::vector<double> pool = RandomVector(256, rng);
  for (const simd::Backend backend : AvailableSimdBackends()) {
    const simd::Kernels* kernels = simd::KernelsFor(backend);
    for (const std::size_t offset : {1ul, 2ul, 3ul, 5ul, 7ul}) {
      const std::size_t n = 64;
      const double* a = pool.data() + offset;
      const double* b = pool.data() + 128 + offset;
      const double want = scalar->dot(a, b, n);
      EXPECT_NEAR(kernels->dot(a, b, n), want, 1e-12 * std::abs(want) + 1e-15)
          << simd::BackendName(backend) << " offset=" << offset;
    }
  }
}

TEST(SimdParityTest, ZeroLengthIsSafe) {
  const std::vector<double> empty;
  double out = 1.0;
  for (const simd::Backend backend :
       {simd::Backend::kScalar, simd::Backend::kAvx2, simd::Backend::kNeon}) {
    const simd::Kernels* kernels = simd::KernelsFor(backend);
    if (kernels == nullptr) continue;
    EXPECT_EQ(kernels->dot(empty.data(), empty.data(), 0), 0.0);
    EXPECT_EQ(kernels->squared_l2_distance(empty.data(), empty.data(), 0),
              0.0);
    kernels->axpy(2.0, empty.data(), nullptr, 0);
    kernels->dot_many(empty.data(), empty.data(), 0, 0, &out);
    EXPECT_EQ(out, 1.0);  // num_rows == 0 writes nothing
  }
}

TEST(SimdParityTest, NanAndInfPropagate) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (const simd::Backend backend :
       {simd::Backend::kScalar, simd::Backend::kAvx2, simd::Backend::kNeon}) {
    const simd::Kernels* kernels = simd::KernelsFor(backend);
    if (kernels == nullptr) continue;
    // NaN anywhere poisons the reduction, in or out of the vector body.
    for (const std::size_t n : {3ul, 11ul}) {
      std::vector<double> a(n, 1.0);
      std::vector<double> b(n, 2.0);
      a[n - 1] = kNan;
      EXPECT_TRUE(std::isnan(kernels->dot(a.data(), b.data(), n)))
          << simd::BackendName(backend) << " n=" << n;
      EXPECT_TRUE(
          std::isnan(kernels->squared_l2_distance(a.data(), b.data(), n)))
          << simd::BackendName(backend) << " n=" << n;
      a[n - 1] = kInf;
      EXPECT_EQ(kernels->dot(a.data(), b.data(), n), kInf);
      // (inf - 2)^2 = inf.
      EXPECT_EQ(kernels->squared_l2_distance(a.data(), b.data(), n), kInf);
      // inf - inf inside the distance is NaN.
      b[n - 1] = kInf;
      EXPECT_TRUE(
          std::isnan(kernels->squared_l2_distance(a.data(), b.data(), n)));
      std::vector<double> y(n, 0.0);
      kernels->axpy(1.0, a.data(), y.data(), n);
      EXPECT_EQ(y[n - 1], kInf);
      kernels->axpy(-1.0, a.data(), y.data(), n);  // inf + (-inf) = NaN
      EXPECT_TRUE(std::isnan(y[n - 1]));
    }
  }
}

TEST(SimdPinTest, PinBackendOverridesDispatch) {
  ASSERT_TRUE(simd::PinBackend(simd::Backend::kScalar));
  EXPECT_EQ(simd::ActiveBackend(), simd::Backend::kScalar);
  for (const simd::Backend backend : AvailableSimdBackends()) {
    EXPECT_TRUE(simd::PinBackend(backend));
    EXPECT_EQ(simd::ActiveBackend(), backend);
  }
  // An unavailable backend leaves the pin untouched.
  for (const simd::Backend backend :
       {simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::KernelsFor(backend) != nullptr) continue;
    const simd::Backend before = simd::ActiveBackend();
    EXPECT_FALSE(simd::PinBackend(backend));
    EXPECT_EQ(simd::ActiveBackend(), before);
  }
  ASSERT_TRUE(simd::PinBackend(simd::Backend::kScalar));
}

// --- scalar bit-identity anchor -------------------------------------------
// Golden values captured from the pre-SIMD build (commit 4af2caf) with the
// identical seeded pipeline: offline training on a two-community graph, one
// grown node, RefineNewNodes for 100 iterations. GRAFICS_SIMD=scalar (or
// PinBackend(kScalar), as here) must reproduce them to the last bit — this
// is the replay/replication guarantee, not a numeric-tolerance test.

rf::SignalRecord MakeRecord(
    std::initializer_list<std::pair<int, double>> observations) {
  rf::SignalRecord record;
  for (const auto& [mac, rssi] : observations) {
    record.Add(rf::MacAddress(static_cast<std::uint64_t>(mac)), rssi);
  }
  return record;
}

TEST(SimdGoldenTest, ScalarBackendReproducesPreSimdRefineRun) {
  ASSERT_TRUE(simd::PinBackend(simd::Backend::kScalar));

  std::vector<rf::SignalRecord> records;
  for (int base : {100, 200}) {
    for (int r = 0; r < 4; ++r) {
      rf::SignalRecord rec;
      for (int m = 0; m < 4; ++m) {
        rec.Add(rf::MacAddress(static_cast<std::uint64_t>(base + m)), -55.0);
      }
      records.push_back(std::move(rec));
    }
  }
  auto graph = graph::BipartiteGraph::FromRecords(records,
                                                  graph::OffsetWeight(120.0));
  embed::TrainerConfig config;
  config.samples_per_edge = 50;
  config.dropout = 0.0;
  config.seed = 1234;
  embed::EmbeddingStore store = embed::TrainEmbeddings(graph, config);
  const std::size_t nodes_before = graph.NumNodes();
  const graph::NodeId new_node = graph.AddRecord(
      MakeRecord({{100, -50.0}, {101, -55.0}, {102, -60.0}}),
      graph::OffsetWeight(120.0));
  Rng rng(5);
  store.Grow(graph.NumNodes() - nodes_before, rng);
  const std::vector<graph::NodeId> new_nodes = {new_node};
  embed::RefineNewNodes(graph, new_nodes, store, config, 100);

  const double kGoldenEgo[8] = {
      -0.034028237245881714, 0.013271457364177671, 0.033890079274176844,
      0.045236679827145493,  -0.027931263889281969, -0.032403083282112104,
      -0.0013361076425529351, -0.09004115025224993};
  const double kGoldenContext[8] = {
      0.037897748725178017,  0.036564981516817689, -0.018372312502568804,
      -0.02642353027513553,  0.0048045964950852145, 0.040115729542545178,
      -0.037778109816078681, 0.087218899627806504};
  const std::span<const double> ego = store.Ego(new_node);
  const std::span<const double> context = store.Context(new_node);
  ASSERT_EQ(ego.size(), 8u);
  ASSERT_EQ(context.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ego[i], kGoldenEgo[i]) << "ego[" << i << "]";
    EXPECT_EQ(context[i], kGoldenContext[i]) << "context[" << i << "]";
  }
}

}  // namespace
}  // namespace grafics
