// Tests for the online ingestion subsystem: the durable record journal
// (round trips, torn-tail truncation after a simulated crash mid-write,
// CRC rejection, model-name binding), the ingest pipeline (background
// fold-in published with Update semantics and bit-exact equivalence to an
// in-process reference, validation and backpressure rejections, stats),
// and journal replay into a fresh registry — the daemon-restart story.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/grafics.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/record_journal.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "store/model_store.h"
#include "synth/presets.h"

namespace grafics::ingest {
namespace {

using namespace std::chrono_literals;

rf::SignalRecord MakeRecord(std::uint64_t seed,
                            std::optional<rf::FloorId> floor = std::nullopt) {
  rf::SignalRecord record;
  record.Add(rf::MacAddress(0x020000000000ULL + seed * 7), -40.0 - seed);
  record.Add(rf::MacAddress(0x030000000000ULL + seed * 13), -60.0);
  record.set_floor(floor);
  return record;
}

std::string TempJournalPath(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(JournalFileNameTest, EscapesEverythingOutsideTheSafeSet) {
  EXPECT_EQ(JournalFileName("campus"), "campus.journal");
  EXPECT_EQ(JournalFileName("hk.tower_3-b"), "hk.tower_3-b.journal");
  // '/' must never survive into the file name — a model called "../x"
  // would otherwise escape the journal directory.
  EXPECT_EQ(JournalFileName("../x"), "..%2Fx.journal");
  EXPECT_EQ(JournalFileName("a/b"), "a%2Fb.journal");
}

TEST(RecordJournalTest, RoundTripsRecordsAndFoldCommits) {
  const std::string path = TempJournalPath("journal_roundtrip.journal");
  const std::vector<rf::SignalRecord> first = {MakeRecord(1, 3),
                                               MakeRecord(2)};
  const std::vector<rf::SignalRecord> second = {MakeRecord(3)};
  {
    RecordJournal journal(path, "campus");
    EXPECT_EQ(journal.TakeReplay().TotalRecords(), 0u);
    journal.Append(first);
    journal.CommitFold(first.size());
    journal.Append(second);  // accepted but never folded
  }
  RecordJournal reopened(path, "campus");
  const JournalReplay replay = reopened.TakeReplay();
  EXPECT_EQ(replay.dropped_bytes, 0u);
  ASSERT_EQ(replay.folded_batches.size(), 1u);
  EXPECT_EQ(replay.folded_batches[0], first);
  EXPECT_EQ(replay.unfolded, second);
  EXPECT_EQ(replay.TotalRecords(), 3u);
}

TEST(RecordJournalTest, ToleratesTornTailAndKeepsAppending) {
  const std::string path = TempJournalPath("journal_torn.journal");
  {
    RecordJournal journal(path, "campus");
    journal.Append(std::vector<rf::SignalRecord>{MakeRecord(1)});
  }
  {
    // Crash mid-write: half a frame header lands on disk.
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    torn.write("\x40\x00", 2);
  }
  {
    RecordJournal journal(path, "campus");
    const JournalReplay replay = journal.TakeReplay();
    EXPECT_EQ(replay.unfolded.size(), 1u);
    EXPECT_EQ(replay.dropped_bytes, 2u);
    // The tail was truncated, so appending continues from a clean frame
    // boundary instead of burying new records behind garbage.
    journal.Append(std::vector<rf::SignalRecord>{MakeRecord(2)});
  }
  RecordJournal reopened(path, "campus");
  const JournalReplay replay = reopened.TakeReplay();
  EXPECT_EQ(replay.dropped_bytes, 0u);
  EXPECT_EQ(replay.unfolded.size(), 2u);
}

TEST(RecordJournalTest, CrcCorruptionCutsReplayAtTheCorruptFrame) {
  const std::string path = TempJournalPath("journal_crc.journal");
  std::uint64_t before_second = 0;
  {
    RecordJournal journal(path, "campus");
    journal.Append(std::vector<rf::SignalRecord>{MakeRecord(1)});
    before_second = journal.bytes();
    journal.Append(std::vector<rf::SignalRecord>{MakeRecord(2)});
  }
  {
    // Flip one payload byte of the second frame: its CRC no longer
    // matches, so replay must stop after the first record.
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(before_second) + 9);
    file.put('\xFF');
  }
  RecordJournal reopened(path, "campus");
  const JournalReplay replay = reopened.TakeReplay();
  EXPECT_EQ(replay.unfolded.size(), 1u);
  EXPECT_GT(replay.dropped_bytes, 0u);
}

TEST(RecordJournalTest, RejectsAJournalRecordedForAnotherModel) {
  const std::string path = TempJournalPath("journal_name.journal");
  { RecordJournal journal(path, "campus"); }
  EXPECT_THROW(RecordJournal(path, "mall"), Error);
}

TEST(RecordJournalTest, RecoversFromAHeaderTornByTheFirstCrash) {
  const std::string path = TempJournalPath("journal_torn_header.journal");
  {
    // A crash mid-first-write leaves a strict prefix of the header: no
    // record was ever accepted, so the journal reinitializes itself.
    std::ofstream torn(path, std::ios::binary);
    torn.write("GJNL\x01", 5);
  }
  RecordJournal journal(path, "campus");
  const JournalReplay replay = journal.TakeReplay();
  EXPECT_EQ(replay.TotalRecords(), 0u);
  EXPECT_EQ(replay.dropped_bytes, 5u);
  journal.Append(std::vector<rf::SignalRecord>{MakeRecord(1)});
}

// --- pipeline fixtures ----------------------------------------------------

core::GraficsConfig FastConfig() {
  core::GraficsConfig config;
  config.trainer.samples_per_edge = 60;
  config.online_refine_iterations = 300;
  return config;
}

/// Trained base model plus an ingest stream and held-out queries.
struct Fixture {
  core::Grafics base{FastConfig()};
  std::vector<rf::SignalRecord> stream;
  std::vector<rf::SignalRecord> queries;

  Fixture() {
    auto config = synth::CampusBuildingConfig(/*seed=*/61, 60);
    auto sim = config.MakeSimulator();
    rf::Dataset dataset = sim.GenerateDataset();
    Rng rng(62);
    auto [train, rest] = dataset.TrainTestSplit(0.6, rng);
    train.KeepLabelsPerFloor(4, rng);
    base.Train(train.records());
    const std::size_t half = rest.size() / 2;
    stream.assign(rest.records().begin(),
                  rest.records().begin() + std::min<std::size_t>(half, 12));
    queries.assign(rest.records().begin() + static_cast<long>(half),
                   rest.records().begin() + static_cast<long>(half) + 12);
  }
};

const Fixture& SharedFixture() {
  static const Fixture fixture;
  return fixture;
}

std::shared_ptr<serve::ModelRegistry> MakeRegistry(const Fixture& f) {
  serve::BatcherConfig batcher;
  batcher.max_batch_size = 8;
  batcher.max_delay = 2ms;
  auto registry = std::make_shared<serve::ModelRegistry>(batcher);
  registry->Load("campus",
                 std::make_shared<const core::Grafics>(f.base.Clone()));
  return registry;
}

TEST(IngestPipelineTest, FoldsInBackgroundAndPublishesWithUpdateSemantics) {
  const Fixture& f = SharedFixture();
  auto registry = MakeRegistry(f);
  IngestConfig config;
  config.fold_batch_size = f.stream.size();  // one deterministic batch
  config.max_delay = 5ms;
  IngestPipeline pipeline(registry, config);
  pipeline.Attach("campus");

  const auto results = pipeline.Submit("campus", f.stream);
  ASSERT_EQ(results.size(), f.stream.size());
  for (const SubmitResult& result : results) {
    EXPECT_TRUE(result.accepted) << result.error;
  }
  ASSERT_TRUE(pipeline.WaitUntilDrained());

  // Generation bumped exactly once, marked as an ingest publish.
  EXPECT_EQ(registry->generation("campus"), 2u);
  const auto registry_stats = registry->Stats("campus");
  ASSERT_EQ(registry_stats.size(), 1u);
  EXPECT_EQ(registry_stats[0].last_publish_source,
            serve::PublishSource::kIngest);
  EXPECT_EQ(registry_stats[0].pending_ingest, 0u);

  // The published snapshot answers exactly like an in-process Update on
  // the same records.
  core::Grafics reference = f.base.Clone();
  reference.Update(f.stream);
  const auto expected = reference.PredictBatch(f.queries, {.num_threads = 1});
  const auto served =
      registry->Snapshot("campus")->PredictBatch(f.queries,
                                                 {.num_threads = 1});
  for (std::size_t i = 0; i < f.queries.size(); ++i) {
    EXPECT_EQ(served[i], expected[i]) << i;
  }

  const auto stats = pipeline.Stats("campus");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].accepted, f.stream.size());
  EXPECT_EQ(stats[0].folded, f.stream.size());
  EXPECT_EQ(stats[0].pending, 0u);
  EXPECT_EQ(stats[0].publishes, 1u);
  EXPECT_EQ(stats[0].last_publish_generation, 2u);
  EXPECT_EQ(stats[0].journal_bytes, 0u);  // no journal configured

  // One fold happened, so the latency counters describe exactly it.
  EXPECT_GT(stats[0].last_fold_us, 0u);
  EXPECT_EQ(stats[0].fold_min_us, stats[0].last_fold_us);
  EXPECT_EQ(stats[0].fold_max_us, stats[0].last_fold_us);
  EXPECT_EQ(stats[0].fold_mean_us, stats[0].last_fold_us);
}

TEST(IngestPipelineTest, FoldLatencyAndSnapshotBytesAreObservable) {
  const Fixture& f = SharedFixture();
  auto registry = MakeRegistry(f);
  IngestConfig config;
  config.fold_batch_size = 4;
  config.max_delay = 5ms;
  IngestPipeline pipeline(registry, config);
  pipeline.Attach("campus");

  // Two deterministic folds.
  const std::vector<rf::SignalRecord> first(f.stream.begin(),
                                            f.stream.begin() + 4);
  const std::vector<rf::SignalRecord> second(f.stream.begin() + 4,
                                             f.stream.begin() + 8);
  for (const auto& result : pipeline.Submit("campus", first)) {
    ASSERT_TRUE(result.accepted) << result.error;
  }
  ASSERT_TRUE(pipeline.WaitUntilDrained());
  for (const auto& result : pipeline.Submit("campus", second)) {
    ASSERT_TRUE(result.accepted) << result.error;
  }
  ASSERT_TRUE(pipeline.WaitUntilDrained());

  const auto stats = pipeline.Stats("campus");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].publishes, 2u);
  EXPECT_GT(stats[0].fold_min_us, 0u);
  EXPECT_GE(stats[0].fold_mean_us, stats[0].fold_min_us);
  EXPECT_GE(stats[0].fold_max_us, stats[0].fold_mean_us);
  EXPECT_GE(stats[0].fold_max_us, stats[0].last_fold_us);
  EXPECT_LE(stats[0].fold_min_us, stats[0].last_fold_us);

  // The served snapshot is a fork chain over f.base, which is still alive:
  // the registry's stats expose the chunk-level sharing. (This fixture's
  // model is barely larger than one chunk, so a fold copy-on-writes most of
  // it — snapshot_sharing_test asserts the strong shared >> owned ratio on
  // a model that spans many chunks.)
  const auto registry_stats = registry->Stats("campus");
  ASSERT_EQ(registry_stats.size(), 1u);
  EXPECT_GT(registry_stats[0].shared_bytes, 0u);
  EXPECT_GT(registry_stats[0].owned_bytes, 0u);
}

TEST(IngestPipelineTest, RejectsBadRecordsUnknownModelsAndBackpressure) {
  const Fixture& f = SharedFixture();
  auto registry = MakeRegistry(f);
  IngestConfig config;
  config.fold_batch_size = 1000;  // the worker must not steal capacity
  config.max_delay = std::chrono::milliseconds(60000);
  config.max_pending = 3;
  IngestPipeline pipeline(registry, config);
  pipeline.Attach("campus");

  // Unknown model: every record rejected, nothing throws.
  const auto unknown = pipeline.Submit("no-such-building", {f.stream[0]});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_FALSE(unknown[0].accepted);
  EXPECT_NE(unknown[0].error.find("no-such-building"), std::string::npos);

  // Attach requires a registry model.
  EXPECT_THROW(pipeline.Attach("no-such-building"), Error);

  // A mixed batch: empty records rejected per-record, the buffer bound
  // rejects everything beyond max_pending.
  std::vector<rf::SignalRecord> batch = {f.stream[0], rf::SignalRecord(),
                                         f.stream[1], f.stream[2],
                                         f.stream[3]};
  const auto results = pipeline.Submit("campus", batch);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].accepted);
  EXPECT_FALSE(results[1].accepted);  // empty record
  EXPECT_TRUE(results[2].accepted);
  EXPECT_TRUE(results[3].accepted);
  EXPECT_FALSE(results[4].accepted);  // backpressure: max_pending == 3
  EXPECT_NE(results[4].error.find("backpressure"), std::string::npos);
  EXPECT_EQ(pipeline.PendingDepth("campus"), 3u);

  // The registry's stats surface the probe.
  const auto registry_stats = registry->Stats("campus");
  ASSERT_EQ(registry_stats.size(), 1u);
  EXPECT_EQ(registry_stats[0].pending_ingest, 3u);

  // Stop() folds the backlog; the records still land in the model.
  pipeline.Stop();
  EXPECT_EQ(registry->generation("campus"), 2u);
  const auto after = pipeline.Submit("campus", {f.stream[0]});
  ASSERT_EQ(after.size(), 1u);
  EXPECT_FALSE(after[0].accepted);
}

TEST(IngestPipelineTest, FoldFailureRetriesWithoutLosingRecords) {
  const Fixture& f = SharedFixture();
  auto registry = MakeRegistry(f);  // "campus" becomes the default
  registry->Load("beta",
                 std::make_shared<const core::Grafics>(f.base.Clone()));
  IngestConfig config;
  config.fold_batch_size = 3;
  config.max_delay = 5ms;
  IngestPipeline pipeline(registry, config);
  pipeline.Attach("beta");
  // Yank the model out from under the pipeline: every fold attempt now
  // fails. Accepted records must be retried, never dropped — dropping
  // would orphan their journal frames ahead of later commit frames.
  registry->Unload("beta");
  const auto results =
      pipeline.Submit("beta", {f.stream[0], f.stream[1], f.stream[2]});
  ASSERT_EQ(results.size(), 3u);
  for (const SubmitResult& result : results) {
    EXPECT_TRUE(result.accepted) << result.error;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(pipeline.PendingDepth("beta"), 3u);
  // Restore the model: the backed-off retry folds the same batch.
  registry->Load("beta",
                 std::make_shared<const core::Grafics>(f.base.Clone()));
  ASSERT_TRUE(pipeline.WaitUntilDrained());
  const auto stats = pipeline.Stats("beta");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].folded, 3u);
  EXPECT_EQ(stats[0].pending, 0u);
}

TEST(IngestPipelineTest, EmptyNameRoutesToTheDefaultModel) {
  const Fixture& f = SharedFixture();
  auto registry = MakeRegistry(f);
  IngestConfig config;
  config.fold_batch_size = 1;
  IngestPipeline pipeline(registry, config);
  pipeline.Attach("campus");
  const auto results = pipeline.Submit("", {f.stream[0]});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].accepted) << results[0].error;
  ASSERT_TRUE(pipeline.WaitUntilDrained());
  EXPECT_EQ(pipeline.Stats("campus")[0].folded, 1u);
}

TEST(IngestPipelineTest, JournalReplayRebuildsTheSameModelAfterRestart) {
  const Fixture& f = SharedFixture();
  const std::string dir = testing::TempDir() + "ingest_replay_dir";
  std::remove((dir + "/" + JournalFileName("campus")).c_str());
  ::mkdir(dir.c_str(), 0755);

  IngestConfig config;
  config.fold_batch_size = 4;  // several publishes, several commit frames
  config.max_delay = 5ms;
  config.journal_dir = dir;

  // First life: accept and fold the stream in chunks of 4.
  std::vector<std::optional<rf::FloorId>> before;
  {
    auto registry = MakeRegistry(f);
    IngestPipeline pipeline(registry, config);
    pipeline.Attach("campus");
    for (std::size_t begin = 0; begin < f.stream.size(); begin += 4) {
      const std::size_t end = std::min(begin + 4, f.stream.size());
      const std::vector<rf::SignalRecord> chunk(
          f.stream.begin() + static_cast<long>(begin),
          f.stream.begin() + static_cast<long>(end));
      const auto results = pipeline.Submit("campus", chunk);
      for (const SubmitResult& result : results) {
        ASSERT_TRUE(result.accepted) << result.error;
      }
      ASSERT_TRUE(pipeline.WaitUntilDrained());
    }
    before = registry->Snapshot("campus")->PredictBatch(f.queries,
                                                        {.num_threads = 1});
    pipeline.Stop();
    registry->Stop();
  }

  // Second life: a fresh registry with the BASE model; Attach replays the
  // journal (same batch boundaries, recorded by the commit frames) and the
  // served answers must be identical to the pre-restart ones.
  {
    auto registry = MakeRegistry(f);
    IngestPipeline pipeline(registry, config);
    pipeline.Attach("campus");
    const auto stats = pipeline.Stats("campus");
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].replayed, f.stream.size());
    EXPECT_EQ(stats[0].folded, f.stream.size());
    EXPECT_EQ(stats[0].publishes, 1u);  // folded batches collapse into one
    EXPECT_EQ(stats[0].replayed_batches, f.stream.size() / 4);
    EXPECT_EQ(stats[0].journal_dropped_bytes, 0u);
    EXPECT_EQ(registry->generation("campus"), 2u);
    const auto after = registry->Snapshot("campus")->PredictBatch(
        f.queries, {.num_threads = 1});
    for (std::size_t i = 0; i < f.queries.size(); ++i) {
      EXPECT_EQ(after[i], before[i]) << i;
    }
  }
}

TEST(IngestPipelineTest, ReplayQueuesRecordsAcceptedButNeverFolded) {
  const Fixture& f = SharedFixture();
  const std::string dir = testing::TempDir() + "ingest_unfolded_dir";
  ::mkdir(dir.c_str(), 0755);
  const std::string path = dir + "/" + JournalFileName("campus");
  std::remove(path.c_str());

  // A journal whose daemon crashed between accept and fold: records
  // present, no commit frame — plus a torn half-frame from the crash.
  {
    RecordJournal journal(path, "campus");
    journal.Append(std::span<const rf::SignalRecord>(f.stream.data(), 3));
  }
  {
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    torn.write("\x77\x00\x00", 3);
  }

  auto registry = MakeRegistry(f);
  IngestConfig config;
  config.fold_batch_size = 3;
  config.max_delay = 5ms;
  config.journal_dir = dir;
  IngestPipeline pipeline(registry, config);
  pipeline.Attach("campus");
  // The unfolded records re-enter the queue and fold like fresh arrivals.
  ASSERT_TRUE(pipeline.WaitUntilDrained());
  const auto stats = pipeline.Stats("campus");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].replayed, 3u);
  EXPECT_EQ(stats[0].folded, 3u);
  // The torn half-frame the crash left behind is observable, not silent.
  EXPECT_EQ(stats[0].journal_dropped_bytes, 3u);
  EXPECT_EQ(stats[0].replayed_batches, 0u);  // nothing was ever committed
  EXPECT_EQ(registry->generation("campus"), 2u);

  // Their fold-commit frame is on disk now: the next life replays them as
  // a folded batch instead of re-queueing.
  pipeline.Stop();
  RecordJournal reopened(path, "campus");
  const JournalReplay replay = reopened.TakeReplay();
  ASSERT_EQ(replay.folded_batches.size(), 1u);
  EXPECT_EQ(replay.folded_batches[0].size(), 3u);
  EXPECT_TRUE(replay.unfolded.empty());
}

// --- journal compaction + the crash matrix --------------------------------

/// Fresh (emptied) directory under the test temp root.
std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0755);
  if (DIR* handle = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(handle)) {
      const std::string file = entry->d_name;
      if (file == "." || file == "..") continue;
      std::remove((dir + "/" + file).c_str());
    }
    ::closedir(handle);
  }
  return dir;
}

bool FileExists(const std::string& path) {
  struct ::stat info;
  return ::stat(path.c_str(), &info) == 0;
}

std::vector<std::optional<rf::FloorId>> Served(
    const serve::ModelRegistry& registry,
    const std::vector<rf::SignalRecord>& queries) {
  return registry.Snapshot("campus")->PredictBatch(queries,
                                                   {.num_threads = 1});
}

TEST(IngestCompactionTest, CompactNowWritesABaseAndRestartSkipsTheReplay) {
  const Fixture& f = SharedFixture();
  const std::string journal_dir = FreshDir("compact_journal_dir");
  const std::string store_dir = FreshDir("compact_store_dir");

  IngestConfig config;
  config.fold_batch_size = 4;
  config.max_delay = 5ms;
  config.journal_dir = journal_dir;

  // First life: fold the stream, then compact. The journal's committed
  // prefix becomes store generation 1 and the journal is truncated to the
  // (empty) pending suffix under a bumped epoch file name.
  std::vector<std::optional<rf::FloorId>> before;
  std::uint64_t journal_bytes_before = 0;
  {
    config.model_store = std::make_shared<store::ModelStore>(store_dir);
    auto registry = MakeRegistry(f);
    IngestPipeline pipeline(registry, config);
    pipeline.Attach("campus");
    for (const auto& result : pipeline.Submit("campus", f.stream)) {
      ASSERT_TRUE(result.accepted) << result.error;
    }
    ASSERT_TRUE(pipeline.WaitUntilDrained());
    journal_bytes_before = pipeline.Stats("campus")[0].journal_bytes;

    const IngestPipeline::CompactOutcome outcome =
        pipeline.CompactNow("campus");
    EXPECT_EQ(outcome.generation, 1u);
    EXPECT_GT(outcome.journal_bytes_reclaimed, 0u);
    EXPECT_EQ(pipeline.JournalBytesReclaimed(),
              outcome.journal_bytes_reclaimed);
    EXPECT_LT(pipeline.Stats("campus")[0].journal_bytes,
              journal_bytes_before);
    before = Served(*registry, f.queries);
    pipeline.Stop();
    registry->Stop();
  }
  // The epoch-0 journal was retired; the active journal is epoch 1.
  EXPECT_FALSE(FileExists(journal_dir + "/" + JournalFileName("campus")));
  EXPECT_TRUE(
      FileExists(journal_dir + "/" + JournalFileName("campus") + ".1"));

  // Simulate a crash that died after the manifest commit but before the
  // old epoch was unlinked: resurrect a stale epoch-0 file. Restart must
  // remove it unread — its committed prefix is already inside the store.
  {
    std::ofstream stale(journal_dir + "/" + JournalFileName("campus"),
                        std::ios::binary);
    stale.write("stale", 5);
  }

  // Second life: the daemon restart rule — open the store's latest
  // generation (base, no journal replay) and attach the epoch-1 journal.
  {
    auto store = std::make_shared<store::ModelStore>(store_dir);
    serve::BatcherConfig batcher;
    batcher.max_batch_size = 8;
    batcher.max_delay = 2ms;
    auto registry = std::make_shared<serve::ModelRegistry>(batcher);
    registry->AttachStore(store);
    registry->LoadFromStore("campus");
    config.model_store = store;
    IngestPipeline pipeline(registry, config);
    pipeline.Attach("campus");

    // No full-journal replay happened: the model came from the store.
    const auto stats = pipeline.Stats("campus");
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].replayed, 0u);
    EXPECT_EQ(stats[0].replayed_batches, 0u);
    EXPECT_EQ(Served(*registry, f.queries), before);
    EXPECT_FALSE(FileExists(journal_dir + "/" + JournalFileName("campus")));

    // The chain keeps extending: more folds, and the next compaction is a
    // delta checkpoint against the retained generation, not a second base.
    const std::vector<rf::SignalRecord> more(f.stream.begin(),
                                             f.stream.begin() + 4);
    for (const auto& result : pipeline.Submit("campus", more)) {
      ASSERT_TRUE(result.accepted) << result.error;
    }
    ASSERT_TRUE(pipeline.WaitUntilDrained());
    EXPECT_EQ(pipeline.CompactNow("campus").generation, 2u);
    const std::vector<store::ArtifactInfo> chain = store->List("campus");
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_FALSE(chain[0].is_delta);
    EXPECT_TRUE(chain[1].is_delta);
    EXPECT_LT(chain[1].bytes, chain[0].bytes);
    pipeline.Stop();
    registry->Stop();
  }
}

TEST(IngestCompactionTest, CrashBeforeTheManifestCommitReplaysTheOldState) {
  const Fixture& f = SharedFixture();
  const std::string journal_dir = FreshDir("compact_crash_journal_dir");
  const std::string store_dir = FreshDir("compact_crash_store_dir");

  IngestConfig config;
  config.fold_batch_size = 4;
  config.max_delay = 5ms;
  config.journal_dir = journal_dir;

  // First life: folds land in the epoch-0 journal, then the "crash" hits
  // mid-compaction — after the artifact was staged and the replacement
  // epoch file appeared, but before the manifest rename committed either.
  std::vector<std::optional<rf::FloorId>> before;
  {
    config.model_store = std::make_shared<store::ModelStore>(store_dir);
    auto registry = MakeRegistry(f);
    IngestPipeline pipeline(registry, config);
    pipeline.Attach("campus");
    for (const auto& result : pipeline.Submit("campus", f.stream)) {
      ASSERT_TRUE(result.accepted) << result.error;
    }
    ASSERT_TRUE(pipeline.WaitUntilDrained());
    before = Served(*registry, f.queries);
    pipeline.Stop();
    registry->Stop();
    // The stage half of the compaction: artifact durable, manifest
    // untouched...
    config.model_store->StageCheckpoint("campus",
                                        registry->Snapshot("campus"));
    // ...and the stray replacement epoch the crash also left behind.
    std::ofstream stray(
        journal_dir + "/" + JournalFileName("campus") + ".1",
        std::ios::binary);
    stray.write("stray", 5);
  }

  // Second life: the manifest never committed, so the store is empty —
  // the restart takes the full-replay path against the epoch-0 journal and
  // rebuilds the exact pre-crash model; the stray epoch file is removed.
  {
    config.model_store = std::make_shared<store::ModelStore>(store_dir);
    EXPECT_EQ(config.model_store->LatestGeneration("campus"), 0u);
    auto registry = MakeRegistry(f);
    IngestPipeline pipeline(registry, config);
    pipeline.Attach("campus");
    const auto stats = pipeline.Stats("campus");
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].replayed, f.stream.size());
    EXPECT_EQ(Served(*registry, f.queries), before);
    EXPECT_FALSE(FileExists(journal_dir + "/" + JournalFileName("campus") +
                            ".1"));
    pipeline.Stop();
    registry->Stop();
  }
}

TEST(IngestCompactionTest, FoldCountPolicyCompactsWithoutAnExplicitRequest) {
  const Fixture& f = SharedFixture();
  const std::string journal_dir = FreshDir("compact_policy_journal_dir");
  const std::string store_dir = FreshDir("compact_policy_store_dir");

  IngestConfig config;
  config.fold_batch_size = 4;
  config.max_delay = 5ms;
  config.journal_dir = journal_dir;
  config.model_store = std::make_shared<store::ModelStore>(store_dir);
  config.compact_every_n_folds = 2;

  auto registry = MakeRegistry(f);
  IngestPipeline pipeline(registry, config);
  pipeline.Attach("campus");
  for (const auto& result : pipeline.Submit("campus", f.stream)) {
    ASSERT_TRUE(result.accepted) << result.error;
  }
  ASSERT_TRUE(pipeline.WaitUntilDrained());
  // The worker compacts between folds; give the policy a moment to fire.
  for (int i = 0; i < 100 && pipeline.JournalBytesReclaimed() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(pipeline.JournalBytesReclaimed(), 0u);
  EXPECT_GE(config.model_store->LatestGeneration("campus"), 1u);
  pipeline.Stop();
  registry->Stop();
}

TEST(IngestCompactionTest, CompactNowThrowsWithoutAJournalOrStore) {
  const Fixture& f = SharedFixture();
  auto registry = MakeRegistry(f);
  IngestConfig config;  // no journal_dir, no model_store
  IngestPipeline pipeline(registry, config);
  pipeline.Attach("campus");
  EXPECT_THROW(pipeline.CompactNow("campus"), Error);
  EXPECT_THROW(pipeline.CompactNow("no-such-building"), Error);
  EXPECT_EQ(pipeline.JournalBytesReclaimed(), 0u);
}

// The compaction path under real contention: submitters, a compaction
// driver, and stats readers against one live pipeline + journal + store.
// This is the interleaving the per-entry mutex and the staged-commit
// protocol exist for (journal epoch swap racing folds racing stats); the
// test runs in the TSan CI job via `ctest -L store`, so any unguarded
// access in that machinery is a hard failure there, not a flake here.
TEST(IngestCompactionTest, ConcurrentSubmitCompactAndStatsStayCoherent) {
  const Fixture& f = SharedFixture();
  const std::string journal_dir = FreshDir("compact_race_journal_dir");
  const std::string store_dir = FreshDir("compact_race_store_dir");

  IngestConfig config;
  config.fold_batch_size = 4;
  config.max_delay = 2ms;
  config.journal_dir = journal_dir;
  config.model_store = std::make_shared<store::ModelStore>(store_dir);
  auto registry = MakeRegistry(f);
  IngestPipeline pipeline(registry, config);
  pipeline.Attach("campus");

  constexpr int kSubmitRounds = 8;
  std::atomic<std::size_t> accepted{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(4);
  // Two submitters: chunks race each other into the journal and the fold
  // batches underneath the compactions.
  for (int submitter = 0; submitter < 2; ++submitter) {
    threads.emplace_back([&] {
      const std::vector<rf::SignalRecord> chunk(f.stream.begin(),
                                                f.stream.begin() + 4);
      for (int round = 0; round < kSubmitRounds; ++round) {
        for (const SubmitResult& result : pipeline.Submit("campus", chunk)) {
          if (result.accepted) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  // Compaction driver: epoch swaps + staged store commits while the
  // submitters keep the journal hot.
  threads.emplace_back([&] {
    for (int i = 0; i < 3; ++i) {
      const IngestPipeline::CompactOutcome outcome =
          pipeline.CompactNow("campus");
      ASSERT_GE(outcome.generation, 1u);
    }
  });
  // Stats reader: every snapshot must be internally coherent even while
  // the counters move underneath it.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto stats = pipeline.Stats("campus");
      ASSERT_EQ(stats.size(), 1u);
      ASSERT_GE(stats[0].accepted, stats[0].folded);
      ASSERT_EQ(stats[0].pending, stats[0].accepted - stats[0].folded);
    }
  });
  for (std::size_t i = 0; i + 1 < threads.size(); ++i) {
    threads[i].join();
  }
  stop.store(true, std::memory_order_release);
  threads.back().join();

  // Quiesce and reconcile: nothing accepted was lost to the races.
  ASSERT_TRUE(pipeline.WaitUntilDrained());
  const auto stats = pipeline.Stats("campus");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].accepted, accepted.load());
  EXPECT_EQ(stats[0].folded, accepted.load());
  EXPECT_EQ(stats[0].pending, 0u);
  EXPECT_GE(config.model_store->LatestGeneration("campus"), 1u);

  // A final compaction on the quiesced pipeline captures the fully folded
  // state; reopening the store's latest generation must answer exactly
  // like the live registry snapshot — the races above never published a
  // torn model.
  pipeline.CompactNow("campus");
  const auto live = Served(*registry, f.queries);
  const auto restored =
      config.model_store->Open("campus")->PredictBatch(f.queries,
                                                       {.num_threads = 1});
  EXPECT_EQ(restored, live);
  pipeline.Stop();
  registry->Stop();
}

}  // namespace
}  // namespace grafics::ingest
