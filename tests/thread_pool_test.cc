#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace grafics {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsMapsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  pool.ParallelFor(0, kN, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++touched[i];
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(touched[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallRangeFewerChunksThanThreads) {
  ThreadPool pool(16);
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyWavesOfWork) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int wave = 0; wave < 10; ++wave) {
    pool.ParallelFor(0, 1000, [&](std::size_t lo, std::size_t hi) {
      long local = 0;
      for (std::size_t i = lo; i < hi; ++i) local += static_cast<long>(i);
      total += local;
    });
  }
  EXPECT_EQ(total.load(), 10L * 999L * 1000L / 2L);
}

}  // namespace
}  // namespace grafics
