#include "cluster/proximity_clusterer.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"

namespace grafics::cluster {
namespace {

/// Three tight 2-D blobs around (0,0), (10,0), (0,10).
struct BlobData {
  Matrix points;
  std::vector<std::optional<rf::FloorId>> labels;      // sparse labels
  std::vector<rf::FloorId> truth;                      // full ground truth
};

BlobData MakeBlobs(std::size_t per_blob, std::size_t labels_per_blob,
                   std::uint64_t seed) {
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  BlobData data;
  data.points = Matrix(3 * per_blob, 2);
  data.labels.assign(3 * per_blob, std::nullopt);
  data.truth.resize(3 * per_blob);
  Rng rng(seed);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t row = b * per_blob + i;
      data.points(row, 0) = centers[b][0] + rng.Normal(0.0, 0.5);
      data.points(row, 1) = centers[b][1] + rng.Normal(0.0, 0.5);
      data.truth[row] = static_cast<rf::FloorId>(b);
      if (i < labels_per_blob) data.labels[row] = static_cast<rf::FloorId>(b);
    }
  }
  return data;
}

TEST(ProximityClustererTest, SizeMismatchThrows) {
  EXPECT_THROW(ClusterEmbeddings(Matrix(2, 2), {std::nullopt}), Error);
}

TEST(ProximityClustererTest, TooManyPointsThrows) {
  ClustererConfig config;
  config.max_points = 3;
  Matrix points(4, 1);
  const std::vector<std::optional<rf::FloorId>> labels(4, std::nullopt);
  EXPECT_THROW(ClusterEmbeddings(points, labels, config), Error);
}

TEST(ProximityClustererTest, SinglePoint) {
  Matrix points(1, 2);
  const std::vector<std::optional<rf::FloorId>> labels = {5};
  const ClusteringResult result = ClusterEmbeddings(points, labels);
  EXPECT_EQ(result.num_clusters(), 1u);
  EXPECT_EQ(*result.cluster_label[result.cluster_of_point[0]], 5);
}

TEST(ProximityClustererTest, FinalClusterCountEqualsLabeledCount) {
  const BlobData data = MakeBlobs(20, 2, 1);  // 6 labeled points total
  const ClusteringResult result = ClusterEmbeddings(data.points, data.labels);
  EXPECT_EQ(result.num_clusters(), 6u);
}

TEST(ProximityClustererTest, InvariantAtMostOneLabeledPerCluster) {
  const BlobData data = MakeBlobs(15, 3, 2);
  const ClusteringResult result = ClusterEmbeddings(data.points, data.labels);
  std::vector<int> labeled_in_cluster(result.num_clusters(), 0);
  for (std::size_t p = 0; p < data.labels.size(); ++p) {
    if (data.labels[p]) ++labeled_in_cluster[result.cluster_of_point[p]];
  }
  for (int count : labeled_in_cluster) EXPECT_LE(count, 1);
}

TEST(ProximityClustererTest, WellSeparatedBlobsClusterByBlobs) {
  const BlobData data = MakeBlobs(25, 1, 3);  // one label per blob
  const ClusteringResult result = ClusterEmbeddings(data.points, data.labels);
  ASSERT_EQ(result.num_clusters(), 3u);
  // Every point's cluster label equals its blob.
  for (std::size_t p = 0; p < data.truth.size(); ++p) {
    const auto label = result.cluster_label[result.cluster_of_point[p]];
    ASSERT_TRUE(label.has_value());
    EXPECT_EQ(*label, data.truth[p]) << "point " << p;
  }
}

TEST(ProximityClustererTest, MultipleClustersPerFloorAllowed) {
  // Two labeled samples on the same floor in separate blobs.
  Matrix points(8, 1);
  std::vector<std::optional<rf::FloorId>> labels(8, std::nullopt);
  for (int i = 0; i < 4; ++i) points(i, 0) = static_cast<double>(i) * 0.1;
  for (int i = 4; i < 8; ++i) {
    points(i, 0) = 100.0 + static_cast<double>(i) * 0.1;
  }
  labels[0] = 7;
  labels[5] = 7;
  const ClusteringResult result = ClusterEmbeddings(points, labels);
  EXPECT_EQ(result.num_clusters(), 2u);
  EXPECT_EQ(*result.cluster_label[0], 7);
  EXPECT_EQ(*result.cluster_label[1], 7);
}

TEST(ProximityClustererTest, NoLabelsMergesToOneCluster) {
  const BlobData data = MakeBlobs(10, 0, 4);
  const ClusteringResult result = ClusterEmbeddings(data.points, data.labels);
  EXPECT_EQ(result.num_clusters(), 1u);
  EXPECT_FALSE(result.cluster_label[0].has_value());
}

TEST(ProximityClustererTest, MergeHistoryLengthIsPointsMinusClusters) {
  const BlobData data = MakeBlobs(12, 2, 5);
  const ClusteringResult result = ClusterEmbeddings(data.points, data.labels);
  EXPECT_EQ(result.merge_history.size(),
            data.points.rows() - result.num_clusters());
}

TEST(ProximityClustererTest, AssignmentsAfterZeroIsSingletons) {
  const BlobData data = MakeBlobs(5, 1, 6);
  const ClusteringResult result = ClusterEmbeddings(data.points, data.labels);
  const auto initial = result.AssignmentsAfter(0);
  std::set<std::size_t> distinct(initial.begin(), initial.end());
  EXPECT_EQ(distinct.size(), data.points.rows());
}

TEST(ProximityClustererTest, AssignmentsAfterKMergesHasNMinusKComponents) {
  const BlobData data = MakeBlobs(10, 2, 7);
  const std::size_t n = data.points.rows();
  const ClusteringResult result = ClusterEmbeddings(data.points, data.labels);
  for (std::size_t k = 0; k <= result.merge_history.size(); ++k) {
    const auto assignment = result.AssignmentsAfter(k);
    const std::set<std::size_t> distinct(assignment.begin(), assignment.end());
    EXPECT_EQ(distinct.size(), n - k) << "after " << k << " merges";
  }
  EXPECT_THROW(result.AssignmentsAfter(result.merge_history.size() + 1),
               Error);
}

TEST(ProximityClustererTest, FinalAssignmentsMatchClusterOfPoint) {
  const BlobData data = MakeBlobs(8, 1, 8);
  const ClusteringResult result = ClusterEmbeddings(data.points, data.labels);
  EXPECT_EQ(result.AssignmentsAfter(result.merge_history.size()),
            result.cluster_of_point);
}

TEST(ProximityClustererTest, ClosePairsMergeBeforeFarPairs) {
  // Points on a line: 0, 1, 50, 51. First two merges must be {0,1}, {50,51}.
  Matrix points(4, 1);
  points(0, 0) = 0.0;
  points(1, 0) = 1.0;
  points(2, 0) = 50.0;
  points(3, 0) = 51.0;
  const std::vector<std::optional<rf::FloorId>> labels(4, std::nullopt);
  const ClusteringResult result = ClusterEmbeddings(points, labels);
  ASSERT_GE(result.merge_history.size(), 2u);
  const auto first = result.merge_history[0];
  const auto second = result.merge_history[1];
  const std::set<std::size_t> m1 = {first.first, first.second};
  const std::set<std::size_t> m2 = {second.first, second.second};
  EXPECT_TRUE((m1 == std::set<std::size_t>{0, 1} &&
               m2 == std::set<std::size_t>{2, 3}) ||
              (m1 == std::set<std::size_t>{2, 3} &&
               m2 == std::set<std::size_t>{0, 1}));
}

TEST(ProximityClustererTest, LabeledClustersRepelEvenWhenClosest) {
  // Two labeled points close together plus a far unlabeled one: the two
  // labeled points must NOT merge despite being the closest pair.
  Matrix points(3, 1);
  points(0, 0) = 0.0;
  points(1, 0) = 0.1;
  points(2, 0) = 100.0;
  const std::vector<std::optional<rf::FloorId>> labels = {1, 2, std::nullopt};
  const ClusteringResult result = ClusterEmbeddings(points, labels);
  EXPECT_EQ(result.num_clusters(), 2u);
  EXPECT_NE(result.cluster_of_point[0], result.cluster_of_point[1]);
}

TEST(ProximityClustererTest, DeterministicResult) {
  const BlobData data = MakeBlobs(15, 2, 9);
  const ClusteringResult a = ClusterEmbeddings(data.points, data.labels);
  const ClusteringResult b = ClusterEmbeddings(data.points, data.labels);
  EXPECT_EQ(a.cluster_of_point, b.cluster_of_point);
  EXPECT_EQ(a.merge_history, b.merge_history);
}

}  // namespace
}  // namespace grafics::cluster
