#include "common/alias_sampler.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace grafics {
namespace {

TEST(AliasSamplerTest, EmptyWeightsThrow) {
  EXPECT_THROW(AliasSampler(std::vector<double>{}), Error);
}

TEST(AliasSamplerTest, NegativeWeightThrows) {
  EXPECT_THROW(AliasSampler(std::vector<double>{1.0, -0.5}), Error);
}

TEST(AliasSamplerTest, AllZeroThrows) {
  EXPECT_THROW(AliasSampler(std::vector<double>{0.0, 0.0}), Error);
}

TEST(AliasSamplerTest, SingleBucketAlwaysSampled) {
  AliasSampler sampler(std::vector<double>{3.7});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler(std::vector<double>{1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(sampler.Sample(rng), 1u);
}

TEST(AliasSamplerTest, NormalizedProbabilities) {
  AliasSampler sampler(std::vector<double>{1.0, 3.0});
  EXPECT_DOUBLE_EQ(sampler.ProbabilityOf(0), 0.25);
  EXPECT_DOUBLE_EQ(sampler.ProbabilityOf(1), 0.75);
  EXPECT_THROW(sampler.ProbabilityOf(2), Error);
}

TEST(AliasSamplerTest, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler(weights);
  Rng rng(3);
  std::vector<int> counts(weights.size(), 0);
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) ++counts[sampler.Sample(rng)];
  for (std::size_t k = 0; k < weights.size(); ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kN, weights[k] / 10.0, 0.005)
        << "bucket " << k;
  }
}

TEST(AliasSamplerTest, HighlySkewedDistribution) {
  AliasSampler sampler(std::vector<double>{1e-6, 1.0});
  Rng rng(5);
  int rare = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (sampler.Sample(rng) == 0) ++rare;
  }
  EXPECT_LT(rare, 10);
}

TEST(AliasSamplerTest, UniformWeightsUniformSamples) {
  AliasSampler sampler(std::vector<double>(8, 2.5));
  Rng rng(7);
  std::vector<int> counts(8, 0);
  constexpr int kN = 160000;
  for (int i = 0; i < kN; ++i) ++counts[sampler.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.125, 0.01);
  }
}

TEST(AliasSamplerTest, LargeDistribution) {
  std::vector<double> weights(10000);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<double>(i % 17) + 0.5;
  }
  AliasSampler sampler(weights);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(sampler.Sample(rng), weights.size());
}

TEST(AliasSamplerTest, DefaultConstructedIsEmpty) {
  AliasSampler sampler;
  EXPECT_TRUE(sampler.empty());
  Rng rng(1);
  EXPECT_THROW(sampler.Sample(rng), Error);
}

}  // namespace
}  // namespace grafics
