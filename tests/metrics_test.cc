#include "core/metrics.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace grafics::core {
namespace {

TEST(MetricsTest, PerfectPrediction) {
  const std::vector<rf::FloorId> truth = {0, 1, 2, 0, 1, 2};
  const ClassificationMetrics m = ComputeMetrics(truth, truth);
  EXPECT_DOUBLE_EQ(m.micro.f_score, 1.0);
  EXPECT_DOUBLE_EQ(m.macro.f_score, 1.0);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_EQ(m.num_samples, 6u);
}

TEST(MetricsTest, AllWrong) {
  const std::vector<rf::FloorId> truth = {0, 0, 0};
  const std::vector<rf::FloorId> predicted = {1, 1, 1};
  const ClassificationMetrics m = ComputeMetrics(truth, predicted);
  EXPECT_DOUBLE_EQ(m.micro.f_score, 0.0);
  EXPECT_DOUBLE_EQ(m.macro.f_score, 0.0);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.0);
}

TEST(MetricsTest, MicroEqualsAccuracyWhenAllPredicted) {
  // With every sample predicted, micro-P == micro-R == accuracy.
  const std::vector<rf::FloorId> truth = {0, 0, 1, 1, 2, 2};
  const std::vector<rf::FloorId> predicted = {0, 1, 1, 1, 2, 0};
  const ClassificationMetrics m = ComputeMetrics(truth, predicted);
  EXPECT_DOUBLE_EQ(m.micro.precision, m.accuracy);
  EXPECT_DOUBLE_EQ(m.micro.recall, m.accuracy);
  EXPECT_DOUBLE_EQ(m.micro.f_score, m.accuracy);
  EXPECT_NEAR(m.accuracy, 4.0 / 6.0, 1e-12);
}

TEST(MetricsTest, KnownMacroComputation) {
  // Floor 0: TP=1 FP=1 FN=0 -> P=0.5 R=1.
  // Floor 1: TP=1 FP=0 FN=1 -> P=1 R=0.5.
  const std::vector<rf::FloorId> truth = {0, 1, 1};
  const std::vector<rf::FloorId> predicted = {0, 0, 1};
  const ClassificationMetrics m = ComputeMetrics(truth, predicted);
  EXPECT_DOUBLE_EQ(m.macro.precision, 0.75);
  EXPECT_DOUBLE_EQ(m.macro.recall, 0.75);
  EXPECT_DOUBLE_EQ(m.macro.f_score, 0.75);
}

TEST(MetricsTest, MacroPunishesMinorityClassErrors) {
  // 9 correct on floor 0, 1 wrong on floor 1: micro high, macro low.
  std::vector<rf::FloorId> truth(10, 0);
  truth[9] = 1;
  std::vector<rf::FloorId> predicted(10, 0);
  const ClassificationMetrics m = ComputeMetrics(truth, predicted);
  EXPECT_GE(m.micro.f_score, 0.9);
  EXPECT_LT(m.macro.f_score, 0.75);
}

TEST(MetricsTest, DiscardedPredictionsCountAsFalseNegatives) {
  const std::vector<rf::FloorId> truth = {0, 0, 1};
  const std::vector<std::optional<rf::FloorId>> predicted = {0, std::nullopt,
                                                             1};
  const ClassificationMetrics m = ComputeMetrics(truth, predicted);
  // Recall for floor 0 is 1/2; precision is 1/1.
  EXPECT_DOUBLE_EQ(m.per_floor_counts.at(0)[0], 1u);  // TP
  EXPECT_DOUBLE_EQ(m.per_floor_counts.at(0)[1], 0u);  // FP
  EXPECT_DOUBLE_EQ(m.per_floor_counts.at(0)[2], 1u);  // FN
  EXPECT_LT(m.micro.recall, m.micro.precision);
}

TEST(MetricsTest, PredictionOfUnseenFloorCountsAsFalsePositive) {
  const std::vector<rf::FloorId> truth = {0, 0};
  const std::vector<rf::FloorId> predicted = {0, 5};
  const ClassificationMetrics m = ComputeMetrics(truth, predicted);
  EXPECT_EQ(m.per_floor_counts.at(5)[1], 1u);  // FP on phantom floor 5
  // Macro averages over the union {0, 5}.
  EXPECT_EQ(m.per_floor_counts.size(), 2u);
}

TEST(MetricsTest, SizeMismatchThrows) {
  EXPECT_THROW(
      ComputeMetrics(std::vector<rf::FloorId>{0},
                     std::vector<rf::FloorId>{0, 1}),
      Error);
}

TEST(MetricsTest, EmptyThrows) {
  EXPECT_THROW(
      ComputeMetrics(std::vector<rf::FloorId>{}, std::vector<rf::FloorId>{}),
      Error);
}

TEST(MetricsTest, NegativeFloorIdsSupported) {
  const std::vector<rf::FloorId> truth = {-1, -1, 0};
  const std::vector<rf::FloorId> predicted = {-1, 0, 0};
  const ClassificationMetrics m = ComputeMetrics(truth, predicted);
  EXPECT_NEAR(m.accuracy, 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(m.per_floor_counts.contains(-1));
}

}  // namespace
}  // namespace grafics::core
